"""Unit tests for the SQL parser."""

import pytest

from repro.algebra.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
)
from repro.errors import SqlSyntaxError
from repro.sql import parse_select
from repro.sql.ast import AggregateExpr, SubqueryExpr


class TestSelectShape:
    def test_minimal(self):
        stmt = parse_select("select x from t")
        assert len(stmt.select_items) == 1
        assert stmt.from_tables[0].name == "t"
        assert stmt.where is None

    def test_aliases(self):
        stmt = parse_select("select e.sal from emp e, dept as d")
        assert stmt.from_tables[0].alias == "e"
        assert stmt.from_tables[1].alias == "d"

    def test_select_item_output_names(self):
        stmt = parse_select("select a as x, b y, c from t")
        assert [item.output_name for item in stmt.select_items] == [
            "x",
            "y",
            None,
        ]

    def test_where_group_having(self):
        stmt = parse_select(
            "select dno, avg(sal) from emp where age < 22 "
            "group by dno having avg(sal) > 10"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_distinct_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select distinct x from t")

    def test_select_all_accepted(self):
        stmt = parse_select("select all x from t")
        assert len(stmt.select_items) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select x from t where a = 1 )")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select x")


class TestWithClause:
    def test_single_view(self):
        stmt = parse_select(
            "with v(dno, asal) as (select dno, avg(sal) from emp "
            "group by dno) select v.asal from v"
        )
        assert len(stmt.with_views) == 1
        view = stmt.with_views[0]
        assert view.name == "v"
        assert view.column_names == ("dno", "asal")

    def test_multiple_views(self):
        stmt = parse_select(
            "with a(x) as (select p from t group by p), "
            "b(y) as (select q from u group by q) "
            "select a.x from a, b"
        )
        assert [view.name for view in stmt.with_views] == ["a", "b"]

    def test_view_requires_column_list(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("with v as (select x from t) select v.x from v")


class TestExpressions:
    def expr(self, text):
        return parse_select(f"select x from t where {text}").where

    def test_precedence_and_over_or(self):
        parsed = self.expr("a = 1 or b = 2 and c = 3")
        assert isinstance(parsed, Or)
        assert isinstance(parsed.items[1], And)

    def test_not(self):
        parsed = self.expr("not a = 1")
        assert isinstance(parsed, Not)

    def test_arith_precedence(self):
        parsed = self.expr("a + b * c = 1")
        assert isinstance(parsed, Comparison)
        left = parsed.left
        assert isinstance(left, Arith) and left.op == "+"
        assert isinstance(left.right, Arith) and left.right.op == "*"

    def test_parenthesized(self):
        parsed = self.expr("(a + b) * c = 1")
        assert parsed.left.op == "*"

    def test_unary_minus_folds_literal(self):
        parsed = self.expr("a = -5")
        assert parsed.right == Literal(-5)

    def test_unary_minus_on_column(self):
        parsed = self.expr("a = -b")
        assert isinstance(parsed.right, Arith)

    def test_string_and_bool_literals(self):
        parsed = self.expr("a = 'x' and b = true and c = false")
        values = [item.right.value for item in parsed.items]
        assert values == ["x", True, False]

    def test_qualified_and_bare_columns(self):
        parsed = self.expr("e.sal > sal")
        assert parsed.left == ColumnRef("e", "sal")
        assert parsed.right == ColumnRef(None, "sal")

    def test_float_literal(self):
        parsed = self.expr("a = 1.25")
        assert parsed.right == Literal(1.25)


class TestAggregatesAndSubqueries:
    def test_aggregate_call(self):
        stmt = parse_select("select avg(sal) from emp group by dno")
        item = stmt.select_items[0].expression
        assert isinstance(item, AggregateExpr)
        assert item.func_name == "avg"

    def test_count_star(self):
        stmt = parse_select("select count(*) from emp group by dno")
        item = stmt.select_items[0].expression
        assert item.func_name == "count" and item.arg is None

    def test_aggregate_with_expression_arg(self):
        stmt = parse_select(
            "select sum(price * (1 - discount)) from lineitem group by o"
        )
        item = stmt.select_items[0].expression
        assert isinstance(item.arg, Arith)

    def test_non_aggregate_name_with_parens_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select frob(x) from t")

    def test_scalar_subquery(self):
        stmt = parse_select(
            "select sal from emp e1 where sal > "
            "(select avg(sal) from emp e2 where e2.dno = e1.dno)"
        )
        assert isinstance(stmt.where.right, SubqueryExpr)
        inner = stmt.where.right.stmt
        assert isinstance(inner.select_items[0].expression, AggregateExpr)

    def test_parenthesized_expression_not_subquery(self):
        stmt = parse_select("select x from t where (a) = 1")
        assert isinstance(stmt.where.left, ColumnRef)
