"""Tests for ORDER BY / LIMIT / BETWEEN / IN support."""

import pytest

from repro.errors import SqlSyntaxError, UnsupportedFeatureError
from repro.sql import bind_sql, parse_select


class TestBetweenAndIn:
    def test_between_desugars_to_range(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.age from emp e where e.age between 25 and 30"
        )
        assert result.rows
        assert all(25 <= row[0] <= 30 for row in result.rows)

    def test_not_between(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.age from emp e where e.age not between 25 and 30"
        )
        assert all(row[0] < 25 or row[0] > 30 for row in result.rows)

    def test_in_list(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.dno from emp e where e.dno in (1, 3)"
        )
        assert result.rows
        assert set(row[0] for row in result.rows) <= {1, 3}

    def test_not_in_list(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.dno from emp e where e.dno not in (1, 3)"
        )
        assert not set(row[0] for row in result.rows) & {1, 3}

    def test_in_single_value(self, emp_dept_db):
        single = emp_dept_db.query(
            "select e.dno from emp e where e.dno in (2)"
        )
        equality = emp_dept_db.query(
            "select e.dno from emp e where e.dno = 2"
        )
        assert len(single.rows) == len(equality.rows)

    def test_in_subquery_parses(self):
        stmt = parse_select(
            "select x from t where x in (select y from u)"
        )
        assert stmt.where is not None

    def test_between_and_boolean_and_disambiguated(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.age from emp e "
            "where e.age between 25 and 30 and e.dno = 1"
        )
        assert all(25 <= row[0] <= 30 for row in result.rows)


class TestOrderByLimit:
    def test_order_ascending(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.sal from emp e order by sal"
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values)

    def test_order_descending(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.sal from emp e order by sal desc"
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values, reverse=True)

    def test_order_by_qualified_source_column(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.sal from emp e order by e.sal"
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values)

    def test_multi_key_order(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.dno, e.sal from emp e order by dno asc, sal desc"
        )
        keyed = [(row[0], -row[1]) for row in result.rows]
        assert keyed == sorted(keyed)

    def test_limit_truncates(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.sal from emp e order by sal limit 5"
        )
        assert len(result.rows) == 5

    def test_limit_without_order(self, emp_dept_db):
        result = emp_dept_db.query("select e.sal from emp e limit 4")
        assert len(result.rows) == 4

    def test_order_on_aggregate_output(self, emp_dept_db):
        result = emp_dept_db.query(
            "select e.dno, avg(e.sal) as a from emp e group by e.dno "
            "order by a desc limit 2"
        )
        assert len(result.rows) == 2
        assert result.rows[0][1] >= result.rows[1][1]

    def test_order_matches_reference(self, emp_dept_db):
        sql = (
            "select e.dno, max(e.sal) as m from emp e group by e.dno "
            "order by m desc limit 3"
        )
        assert emp_dept_db.query(sql).rows == emp_dept_db.reference(sql).rows

    def test_order_by_unselected_column_rejected(self, emp_dept_db):
        with pytest.raises(UnsupportedFeatureError):
            emp_dept_db.query("select e.sal from emp e order by e.age")

    def test_order_in_view_rejected(self, emp_dept_db):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(
                "with v(d, a) as (select e.dno, avg(e.sal) from emp e "
                "group by e.dno order by d) select v.a from v",
                emp_dept_db.catalog,
            )

    def test_limit_float_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select x from t limit 2.5")

    def test_order_survives_pullup(self, emp_dept_db):
        sql = """
        with a1(dno, asal) as (
            select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
        )
        select e1.sal from emp e1, a1 b
        where e1.dno = b.dno and e1.sal > b.asal
        order by sal desc limit 4
        """
        full = emp_dept_db.query(sql, optimizer="full")
        reference = emp_dept_db.reference(sql)
        # descending salary is tie-free enough on this fixture
        assert full.rows == reference.rows
