"""Tests for the DDL/DML layer (CREATE TABLE / CREATE INDEX / INSERT)."""

import pytest

from repro import Database
from repro.errors import SqlSyntaxError
from repro.sql.ddl import (
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    maybe_parse_ddl,
)


class TestParsing:
    def test_create_table_inline_pk(self):
        statement = maybe_parse_ddl(
            "create table emp (eno int primary key, sal float)"
        )
        assert isinstance(statement, CreateTableStmt)
        assert statement.columns == (("eno", "int"), ("sal", "float"))
        assert statement.primary_key == ("eno",)

    def test_create_table_trailing_pk_clause(self):
        statement = maybe_parse_ddl(
            "create table li (ok int, ln int, q float, "
            "primary key (ok, ln))"
        )
        assert statement.primary_key == ("ok", "ln")

    def test_create_table_without_pk(self):
        statement = maybe_parse_ddl("create table t (a int, b text)")
        assert statement.primary_key == ()

    def test_create_index(self):
        statement = maybe_parse_ddl("create index i on emp (dno, sal)")
        assert isinstance(statement, CreateIndexStmt)
        assert statement.table == "emp"
        assert statement.columns == ("dno", "sal")

    def test_insert_multiple_rows(self):
        statement = maybe_parse_ddl(
            "insert into t values (1, 2.5, 'x'), (-3, 4.0, 'y')"
        )
        assert isinstance(statement, InsertStmt)
        assert statement.rows == ((1, 2.5, "x"), (-3, 4.0, "y"))

    def test_insert_booleans(self):
        statement = maybe_parse_ddl("insert into t values (true, false)")
        assert statement.rows == ((True, False),)

    def test_select_is_not_ddl(self):
        assert maybe_parse_ddl("select x from t") is None

    def test_bad_type_rejected(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("create table t (a decimal)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("create table t (a int) extra")

    def test_insert_requires_literals(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("insert into t values (a + 1)")

    def test_empty_table_rejected(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("create table t ()")


class TestExecute:
    def test_full_lifecycle_via_sql(self):
        db = Database()
        assert db.execute(
            "create table emp (eno int primary key, dno int, sal float)"
        ) is None
        db.execute("create index emp_dno on emp (dno)")
        db.execute(
            "insert into emp values (1, 0, 100.0), (2, 0, 200.0), "
            "(3, 1, 300.0)"
        )
        result = db.execute(
            "select e.dno, avg(e.sal) as a from emp e group by e.dno"
        )
        assert sorted(result.rows) == [(0, 150.0), (1, 300.0)]

    def test_index_usable_after_sql_creation(self):
        db = Database()
        db.execute("create table t (k int primary key, g int)")
        db.execute("create index t_g on t (g)")
        db.execute(
            "insert into t values "
            + ", ".join(f"({i}, {i % 5})" for i in range(100))
        )
        info = db.catalog.info("t")
        assert info.indexes["t_g"].num_entries == 100

    def test_execute_routes_queries(self, emp_dept_db):
        result = emp_dept_db.execute("select e.sal from emp e limit 1")
        assert result is not None and len(result.rows) == 1

    def test_cli_accepts_ddl(self):
        import io

        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(Database(), out=out)
        shell.handle("create table t (a int);")
        shell.handle("insert into t values (1), (2);")
        shell.handle("select t.a from t;")
        text = out.getvalue()
        assert text.count("ok") >= 2
        assert "(2 rows)" in text


class TestDrop:
    def test_drop_table_parse(self):
        from repro.sql.ddl import DropIndexStmt, DropTableStmt

        assert maybe_parse_ddl("DROP TABLE emp") == DropTableStmt(name="emp")
        assert maybe_parse_ddl("drop index i1") == DropIndexStmt(name="i1")

    def test_drop_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("drop table emp cascade")
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("drop")

    def test_drop_table_lifecycle(self):
        db = Database()
        db.execute("create table t (a int)")
        db.execute("insert into t values (1)")
        db.execute("drop table t")
        assert not db.catalog.has_table("t")
        # The name is reusable afterwards.
        db.execute("create table t (b float)")
        assert db.catalog.has_table("t")

    def test_drop_unknown_table(self):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            Database().execute("drop table ghost")

    def test_drop_index_lifecycle(self):
        db = Database()
        db.execute("create table t (k int primary key, g int)")
        db.execute("create index t_g on t (g)")
        db.execute("drop index t_g")
        assert "t_g" not in db.catalog.info("t").indexes

    def test_drop_unknown_index(self):
        from repro.errors import CatalogError

        db = Database()
        db.execute("create table t (a int)")
        with pytest.raises(CatalogError):
            db.execute("drop index ghost")
