"""Unit tests for the type system."""

import pytest

from repro.datatypes import DataType, infer_type
from repro.errors import SchemaError


class TestWidths:
    def test_int_width(self):
        assert DataType.INT.width == 4

    def test_float_width(self):
        assert DataType.FLOAT.width == 8

    def test_str_width(self):
        assert DataType.STR.width == 16

    def test_bool_width(self):
        assert DataType.BOOL.width == 1

    def test_date_width(self):
        assert DataType.DATE.width == 4


class TestValidation:
    def test_int_accepts_int(self):
        assert DataType.INT.validate(7) == 7

    def test_int_rejects_bool(self):
        with pytest.raises(SchemaError):
            DataType.INT.validate(True)

    def test_int_rejects_float(self):
        with pytest.raises(SchemaError):
            DataType.INT.validate(1.5)

    def test_float_accepts_int_and_converts(self):
        value = DataType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_string(self):
        with pytest.raises(SchemaError):
            DataType.FLOAT.validate("3.0")

    def test_str_accepts_str(self):
        assert DataType.STR.validate("x") == "x"

    def test_str_rejects_number(self):
        with pytest.raises(SchemaError):
            DataType.STR.validate(3)

    def test_bool_accepts_bool(self):
        assert DataType.BOOL.validate(False) is False

    def test_bool_rejects_int(self):
        with pytest.raises(SchemaError):
            DataType.BOOL.validate(1)

    def test_date_stored_as_int(self):
        assert DataType.DATE.validate(1000) == 1000

    def test_null_rejected_everywhere(self):
        # the paper assumes a NULL-free database (Section 2)
        for dtype in DataType:
            with pytest.raises(SchemaError):
                dtype.validate(None)


class TestInference:
    def test_infer_bool_before_int(self):
        assert infer_type(True) is DataType.BOOL

    def test_infer_int(self):
        assert infer_type(3) is DataType.INT

    def test_infer_float(self):
        assert infer_type(3.5) is DataType.FLOAT

    def test_infer_str(self):
        assert infer_type("s") is DataType.STR

    def test_infer_unknown_raises(self):
        with pytest.raises(SchemaError):
            infer_type([1, 2])
