"""Shared fixtures: small, deterministic databases used across the suite."""

from __future__ import annotations

import random

import pytest

from repro import CostParams, Database
from repro.catalog import Catalog, Column
from repro.datatypes import DataType


@pytest.fixture
def empty_catalog() -> Catalog:
    return Catalog()


@pytest.fixture
def emp_dept_db() -> Database:
    """The paper's running-example schema, small enough for the
    brute-force reference evaluator."""
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept",
        [("dno", "int"), ("budget", "float"), ("loc", "int")],
        primary_key=["dno"],
    )
    rng = random.Random(1234)
    db.insert(
        "emp",
        [
            (
                eno,
                eno % 7,
                float(rng.randint(20_000, 120_000)),
                rng.randint(18, 65),
            )
            for eno in range(140)
        ],
    )
    db.insert(
        "dept",
        [
            (dno, float(rng.randint(100_000, 3_000_000)), dno % 3)
            for dno in range(7)
        ],
    )
    db.create_index("emp_dno_idx", "emp", ["dno"])
    db.add_foreign_key("emp", ["dno"], "dept", ["dno"])
    db.analyze()
    return db


@pytest.fixture
def nopk_db() -> Database:
    """A schema with a key-less table, forcing row-id surrogate keys."""
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "events", [("dno", "int"), ("kind", "int"), ("amount", "float")]
    )
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float")],
        primary_key=["eno"],
    )
    rng = random.Random(99)
    db.insert(
        "events",
        [
            (rng.randrange(5), rng.randrange(3), float(rng.randint(1, 50)))
            for _ in range(40)
        ],
    )
    db.insert(
        "emp",
        [(e, e % 5, float(rng.randint(100, 900))) for e in range(60)],
    )
    db.analyze()
    return db


def make_columns(*specs):
    """('name', DataType) pairs to Column objects."""
    return [Column(name, dtype) for name, dtype in specs]


@pytest.fixture
def int_float_columns():
    return make_columns(
        ("a", DataType.INT), ("b", DataType.FLOAT), ("c", DataType.STR)
    )
