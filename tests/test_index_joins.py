"""Focused tests for index access paths and index nested-loop joins."""

import random

import pytest

from repro import CostParams, Database
from repro.algebra.plan import JoinNode, ScanNode, plan_nodes
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import rows_equal_bag


@pytest.fixture
def indexed_db():
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "fact",
        [("fid", "int"), ("a", "int"), ("b", "int"), ("v", "float")],
        primary_key=["fid"],
    )
    db.create_table(
        "probe", [("pid", "int"), ("a", "int"), ("b", "int")],
        primary_key=["pid"],
    )
    rng = random.Random(55)
    # 'a' runs in contiguous blocks of 100 rows (clustered layout), so
    # an equality probe touches few data pages
    db.insert(
        "fact",
        [
            (i, i // 100, i % 7, float(rng.randint(1, 99)))
            for i in range(4000)
        ],
    )
    db.insert(
        "probe",
        [(p, rng.randrange(40), rng.randrange(7)) for p in range(12)],
    )
    db.create_index("fact_a", "fact", ["a"])
    db.create_index("fact_ab", "fact", ["a", "b"])
    db.create_index("fact_fid", "fact", ["fid"])
    db.analyze()
    return db


def scan(db, table, alias):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
    )


def run(db, plan):
    CostModel(db.catalog, db.params).annotate_tree(plan)
    context = ExecutionContext(db.catalog, db.io, db.params)
    with db.io.measure() as span:
        result = execute_plan(plan, context)
    return result, span.delta.total


class TestIndexNlj:
    def test_single_column_inlj_matches_hash_join(self, indexed_db):
        def make(method, index_name=None):
            return JoinNode(
                scan(indexed_db, "probe", "p"),
                scan(indexed_db, "fact", "f"),
                method=method,
                equi_keys=[(("p", "a"), ("f", "a"))],
                index_name=index_name,
            )

        hashed, _ = run(indexed_db, make("hj"))
        indexed, _ = run(indexed_db, make("inlj", "fact_a"))
        assert rows_equal_bag(hashed.rows, indexed.rows)

    def test_multi_column_inlj(self, indexed_db):
        def make(method, index_name=None, keys=None):
            return JoinNode(
                scan(indexed_db, "probe", "p"),
                scan(indexed_db, "fact", "f"),
                method=method,
                equi_keys=keys,
                index_name=index_name,
            )

        keys_ab = [(("p", "a"), ("f", "a")), (("p", "b"), ("f", "b"))]
        hashed, _ = run(indexed_db, make("hj", keys=keys_ab))
        indexed, _ = run(indexed_db, make("inlj", "fact_ab", keys=keys_ab))
        assert rows_equal_bag(hashed.rows, indexed.rows)

    def test_inlj_cheaper_for_selective_probe(self, indexed_db):
        small_probe = JoinNode(
            scan(indexed_db, "probe", "p"),
            scan(indexed_db, "fact", "f"),
            method="inlj",
            equi_keys=[(("p", "a"), ("f", "a"))],
            index_name="fact_a",
        )
        full_scan = JoinNode(
            scan(indexed_db, "probe", "p"),
            scan(indexed_db, "fact", "f"),
            method="hj",
            equi_keys=[(("p", "a"), ("f", "a"))],
        )
        _, inlj_io = run(indexed_db, small_probe)
        _, hj_io = run(indexed_db, full_scan)
        # 12 probes × ~100 matches is comparable to 28 pages of scan;
        # the point is both are real, measured numbers
        assert inlj_io > 0 and hj_io > 0

    def test_optimizer_picks_multi_column_index(self, indexed_db):
        result = indexed_db.query(
            "select p.pid, f.v from probe p, fact f "
            "where p.a = f.a and p.b = f.b",
            optimizer="full",
            execute=False,
        )
        joins = [
            node
            for node in plan_nodes(result.plan)
            if isinstance(node, JoinNode)
        ]
        # whichever method wins, the INLJ candidate must have been legal;
        # execute to confirm correctness either way
        rows, _ = indexed_db.execute_plan(result.plan)
        reference = indexed_db.reference(
            "select p.pid, f.v from probe p, fact f "
            "where p.a = f.a and p.b = f.b"
        )
        assert rows_equal_bag(reference.rows, rows.rows)

    def test_index_scan_with_residual_filters(self, indexed_db):
        from repro.algebra.expressions import Comparison, col, lit

        fields = table_row_schema(
            "f", indexed_db.catalog.table("fact").columns
        ).fields
        plan = ScanNode(
            "fact",
            "f",
            fields,
            filters=(Comparison(">", col("f.v"), lit(50.0)),),
            index_name="fact_a",
            index_values=(3,),
        )
        result, io = run(indexed_db, plan)
        a_position = plan.schema.index_of("f", "a")
        v_position = plan.schema.index_of("f", "v")
        assert all(row[a_position] == 3 for row in result.rows)
        assert all(row[v_position] > 50.0 for row in result.rows)
        # clustered run of 100 rows: far cheaper than the full scan
        assert io < indexed_db.catalog.table("fact").num_pages // 2

    def test_estimated_equals_executed_for_unique_probe(self, indexed_db):
        """Probing a unique key: one match, one data page — the
        estimator's unclustered assumption is exact here."""
        plan = JoinNode(
            scan(indexed_db, "probe", "p"),
            scan(indexed_db, "fact", "f"),
            method="inlj",
            equi_keys=[(("p", "pid"), ("f", "fid"))],
            index_name="fact_fid",
        )
        CostModel(indexed_db.catalog, indexed_db.params).annotate_tree(plan)
        context = ExecutionContext(
            indexed_db.catalog, indexed_db.io, indexed_db.params
        )
        with indexed_db.io.measure() as span:
            execute_plan(plan, context)
        assert span.delta.total == pytest.approx(plan.props.cost, rel=0.1)

    def test_unclustered_estimate_is_conservative(self, indexed_db):
        """On clustered runs the per-match page assumption
        overestimates — the standard Selinger bias, never an
        underestimate."""
        plan = JoinNode(
            scan(indexed_db, "probe", "p"),
            scan(indexed_db, "fact", "f"),
            method="inlj",
            equi_keys=[(("p", "a"), ("f", "a"))],
            index_name="fact_a",
        )
        CostModel(indexed_db.catalog, indexed_db.params).annotate_tree(plan)
        context = ExecutionContext(
            indexed_db.catalog, indexed_db.io, indexed_db.params
        )
        with indexed_db.io.measure() as span:
            execute_plan(plan, context)
        assert span.delta.total <= plan.props.cost
