"""Tests for invariant grouping and the minimal invariant set
(Section 4.1, Figure 2(a))."""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.legality import check_plan
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.errors import TransformError
from repro.sql import bind_sql
from repro.transforms import (
    apply_invariant_split,
    minimal_invariant_set,
    push_down_plan,
    removable_aliases,
    pull_up,
)

EXAMPLE2_VIEW = """
with c(dno, asal) as (
    select e.dno, avg(e.sal) from emp e, dept d
    where e.dno = d.dno and d.budget < 1000000
    group by e.dno
)
select v.dno, v.asal from c v
"""


class TestMinimalInvariantSet:
    def test_example2_removes_dept(self, emp_dept_db):
        query = bind_sql(EXAMPLE2_VIEW, emp_dept_db.catalog)
        block = query.views[0].block
        invariant = minimal_invariant_set(block, emp_dept_db.catalog)
        assert invariant == {"v__e"}  # emp must stay; dept moves out

    def test_removable_aliases(self, emp_dept_db):
        query = bind_sql(EXAMPLE2_VIEW, emp_dept_db.catalog)
        block = query.views[0].block
        assert removable_aliases(block, emp_dept_db.catalog) == {"v__d"}

    def test_aggregate_source_not_removable(self, emp_dept_db):
        sql = """
        with v(dno, ab) as (
            select e.dno, avg(d.budget) from emp e, dept d
            where e.dno = d.dno group by e.dno
        )
        select v.ab from v
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        block = query.views[0].block
        # dept feeds the aggregate now: nothing is removable
        assert removable_aliases(block, emp_dept_db.catalog) == frozenset()

    def test_non_key_join_not_removable(self, nopk_db):
        sql = """
        with v(dno, total) as (
            select e.dno, sum(e.sal) from emp e, events x
            where e.dno = x.dno group by e.dno
        )
        select v.total from v
        """
        query = bind_sql(sql, nopk_db.catalog)
        block = query.views[0].block
        # events has no key covered by the join: each group may match
        # several event rows, so removal would change the aggregates
        assert removable_aliases(block, nopk_db.catalog) == frozenset()

    def test_nonequi_cross_predicate_blocks_removal(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e, dept d
            where e.dno = d.dno and d.budget > e.sal
            group by e.dno
        )
        select v.asal from v
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        block = query.views[0].block
        assert removable_aliases(block, emp_dept_db.catalog) == frozenset()

    def test_join_on_non_grouping_column_blocks_removal(self, emp_dept_db):
        sql = """
        with v(age, asal) as (
            select e.age, avg(e.sal) from emp e, dept d
            where e.dno = d.dno group by e.age
        )
        select v.asal from v
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        block = query.views[0].block
        # join column e.dno is not a grouping column: groups mix
        # departments, so dept cannot move above the group-by
        assert removable_aliases(block, emp_dept_db.catalog) == frozenset()

    def test_single_relation_view_trivially_invariant(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e group by e.dno
        )
        select v.asal from v
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        block = query.views[0].block
        assert minimal_invariant_set(block, emp_dept_db.catalog) == {"v__e"}


class TestApplyInvariantSplit:
    def check(self, db, sql):
        query = bind_sql(sql, db.catalog)
        reference = evaluate_canonical(query, db.catalog)
        split = apply_invariant_split(query, db.catalog)
        result = evaluate_canonical(split, db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)
        return split

    def test_example2_equivalence(self, emp_dept_db):
        split = self.check(emp_dept_db, EXAMPLE2_VIEW)
        assert [ref.alias for ref in split.base_tables] == ["v__d"]
        assert split.views[0].block.aliases == {"v__e"}
        # dept's filter and join-back predicate moved to the outer block
        assert len(split.predicates) == 2

    def test_having_preserved(self, emp_dept_db):
        sql = """
        with c(dno, asal) as (
            select e.dno, avg(e.sal) from emp e, dept d
            where e.dno = d.dno and d.budget < 2000000
            group by e.dno having avg(e.sal) > 30000
        )
        select v.asal from c v
        """
        split = self.check(emp_dept_db, sql)
        assert len(split.views[0].block.having) == 1

    def test_grouping_on_removed_side_rewritten(self, emp_dept_db):
        # group by d.dno (equated to e.dno): dept still removable, with
        # the grouping column rewritten to the kept side
        sql = """
        with c(dno, asal) as (
            select d.dno, avg(e.sal) from emp e, dept d
            where e.dno = d.dno group by d.dno
        )
        select v.dno, v.asal from c v
        """
        split = self.check(emp_dept_db, sql)
        view = split.views[0]
        assert view.block.aliases == {"v__e"}
        assert view.block.group_by[0].key == ("v__e", "dno")

    def test_no_views_untouched(self, emp_dept_db):
        query = bind_sql("select e.sal from emp e", emp_dept_db.catalog)
        assert apply_invariant_split(query, emp_dept_db.catalog) is query

    def test_restore_by_pullup_round_trips(self, emp_dept_db):
        """Splitting then pulling the moved relation back must stay
        equivalent — this is the optimizer's 'restore set' path."""
        query = bind_sql(EXAMPLE2_VIEW, emp_dept_db.catalog)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        split = apply_invariant_split(query, emp_dept_db.catalog)
        restored = pull_up(split, "v", ["v__d"], emp_dept_db.catalog)
        result = evaluate_canonical(restored, emp_dept_db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)


class TestPlanLevelPushDown:
    """Figure 2(a): G(J(R1, R2)) -> J(G'(R1), R2)."""

    def build(self, db, having=()):
        emp_columns = db.catalog.table("emp").columns
        dept_columns = db.catalog.table("dept").columns
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            ScanNode(
                "dept",
                "d",
                table_row_schema("d", dept_columns).fields,
                filters=(Comparison("<", col("d.budget"), lit(1_500_000)),),
            ),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        return GroupByNode(
            join,
            group_keys=[("e", "dno")],
            aggregates=[("asal", AggregateCall("avg", col("e.sal")))],
            having=having,
            projection=[("e", "dno"), (None, "asal")],
        )

    def run_plan(self, db, plan):
        CostModel(db.catalog, db.params).annotate_tree(plan)
        context = ExecutionContext(db.catalog, db.io, db.params)
        return execute_plan(plan, context)

    def test_equivalence(self, emp_dept_db):
        original = self.build(emp_dept_db)
        baseline = self.run_plan(emp_dept_db, original)
        pushed = push_down_plan(self.build(emp_dept_db), emp_dept_db.catalog)
        check_plan(pushed, emp_dept_db.catalog)
        result = self.run_plan(emp_dept_db, pushed)
        assert rows_equal_bag(baseline.rows, result.rows)

    def test_having_pushed_down_with_group_by(self, emp_dept_db):
        having = (Comparison(">", col("asal"), lit(40_000.0)),)
        original = self.build(emp_dept_db, having=having)
        baseline = self.run_plan(emp_dept_db, original)
        pushed = push_down_plan(
            self.build(emp_dept_db, having=having), emp_dept_db.catalog
        )
        assert isinstance(pushed, JoinNode)
        assert isinstance(pushed.left, GroupByNode)
        assert pushed.left.having == having  # "Having can be pushed down"
        result = self.run_plan(emp_dept_db, pushed)
        assert rows_equal_bag(baseline.rows, result.rows)

    def test_rejects_when_partner_feeds_aggregate(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        dept_columns = emp_dept_db.catalog.table("dept").columns
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            ScanNode("dept", "d", table_row_schema("d", dept_columns).fields),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        group = GroupByNode(
            join,
            group_keys=[("e", "dno")],
            aggregates=[("ab", AggregateCall("avg", col("d.budget")))],
        )
        with pytest.raises(TransformError):
            push_down_plan(group, emp_dept_db.catalog)

    def test_rejects_non_key_partner_join(self, nopk_db):
        emp_columns = nopk_db.catalog.table("emp").columns
        events_columns = nopk_db.catalog.table("events").columns
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            ScanNode(
                "events", "x", table_row_schema("x", events_columns).fields
            ),
            method="hj",
            equi_keys=[(("e", "dno"), ("x", "dno"))],
        )
        group = GroupByNode(
            join,
            group_keys=[("e", "dno")],
            aggregates=[("s", AggregateCall("sum", col("e.sal")))],
        )
        with pytest.raises(TransformError):
            push_down_plan(group, nopk_db.catalog)

    def test_rejects_join_on_non_grouping_column(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        dept_columns = emp_dept_db.catalog.table("dept").columns
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            ScanNode("dept", "d", table_row_schema("d", dept_columns).fields),
            method="hj",
            equi_keys=[(("e", "eno"), ("d", "dno"))],  # eno not grouped
        )
        group = GroupByNode(
            join,
            group_keys=[("e", "dno")],
            aggregates=[("s", AggregateCall("sum", col("e.sal")))],
        )
        with pytest.raises(TransformError):
            push_down_plan(group, emp_dept_db.catalog)
