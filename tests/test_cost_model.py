"""Cost-model tests: annotation sanity and estimated-vs-executed IO.

The central property: for plans whose cardinality estimates are exact
(no filters, or filters the estimator can evaluate exactly), the
estimated IO cost equals the executed page IO — the two sides share the
same formulas over the same page counts (experiment E12's unit-level
version)."""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode, SortNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel, CostParams
from repro.engine import ExecutionContext, execute_plan
from repro.engine.spill import (
    external_sort_extra_io,
    hash_group_extra_io,
    hash_spill_extra_io,
    nlj_blocks,
)


def scan(db, table, alias, filters=()):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
        filters=filters,
    )


def annotate(db, plan, memory_pages=8):
    model = CostModel(db.catalog, CostParams(memory_pages=memory_pages))
    model.annotate_tree(plan)
    return plan


def executed_io(db, plan):
    context = ExecutionContext(db.catalog, db.io, db.params)
    with db.io.measure() as span:
        execute_plan(plan, context)
    return span.delta.total


class TestSpillFormulas:
    def test_sort_in_memory_free(self):
        assert external_sort_extra_io(5, 8) == 0

    def test_sort_one_merge_pass(self):
        # 32 pages, 8 buffers -> 4 runs, fan-in 7 -> one pass: 2*32
        assert external_sort_extra_io(32, 8) == 64

    def test_sort_grows_with_pages(self):
        assert external_sort_extra_io(640, 8) >= external_sort_extra_io(
            64, 8
        )

    def test_hash_spill_condition(self):
        assert hash_spill_extra_io(4, 100, 8) == 0
        assert hash_spill_extra_io(16, 100, 8) == 2 * 116

    def test_hash_group_condition(self):
        assert hash_group_extra_io(100, 4, 8) == 0
        assert hash_group_extra_io(100, 50, 8) == 200

    def test_nlj_blocks(self):
        assert nlj_blocks(1, 8) == 1
        assert nlj_blocks(12, 8) == 2
        assert nlj_blocks(0, 8) == 1


class TestAnnotation:
    def test_scan_cardinality_exact(self, emp_dept_db):
        plan = annotate(emp_dept_db, scan(emp_dept_db, "emp", "e"))
        assert plan.props.rows == 140
        assert plan.props.cost == emp_dept_db.catalog.table("emp").num_pages

    def test_equality_filter_selectivity(self, emp_dept_db):
        plan = annotate(
            emp_dept_db,
            scan(
                emp_dept_db,
                "emp",
                "e",
                filters=(Comparison("=", col("e.dno"), lit(3)),),
            ),
        )
        assert plan.props.rows == pytest.approx(140 / 7)

    def test_range_filter_uses_min_max(self, emp_dept_db):
        plan = annotate(
            emp_dept_db,
            scan(
                emp_dept_db,
                "emp",
                "e",
                filters=(Comparison("<", col("e.sal"), lit(1)),),
            ),
        )
        # below the minimum: close to zero (floor 1/ndv)
        assert plan.props.rows < 5

    def test_fk_join_cardinality(self, emp_dept_db):
        join = JoinNode(
            scan(emp_dept_db, "emp", "e"),
            scan(emp_dept_db, "dept", "d"),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        annotate(emp_dept_db, join)
        assert join.props.rows == pytest.approx(140)

    def test_group_by_cardinality(self, emp_dept_db):
        group = GroupByNode(
            scan(emp_dept_db, "emp", "e"),
            group_keys=[("e", "dno")],
            aggregates=[("a", AggregateCall("avg", col("e.sal")))],
        )
        annotate(emp_dept_db, group)
        assert group.props.rows == pytest.approx(7)

    def test_group_capped_by_input_rows(self, emp_dept_db):
        group = GroupByNode(
            scan(emp_dept_db, "emp", "e"),
            group_keys=[("e", "eno"), ("e", "dno")],
            aggregates=[("a", AggregateCall("avg", col("e.sal")))],
        )
        annotate(emp_dept_db, group)
        assert group.props.rows <= 140

    def test_width_tracks_projection(self, emp_dept_db):
        wide = annotate(emp_dept_db, scan(emp_dept_db, "emp", "e"))
        narrow_node = ScanNode(
            "emp",
            "e",
            [wide.schema.fields[0]],
        )
        narrow = annotate(emp_dept_db, narrow_node)
        assert narrow.props.width < wide.props.width

    def test_sort_order_property(self, emp_dept_db):
        sort = SortNode(scan(emp_dept_db, "emp", "e"), [("e", "sal")])
        annotate(emp_dept_db, sort)
        assert sort.props.order == (("e", "sal"),)

    def test_smj_output_order(self, emp_dept_db):
        join = JoinNode(
            scan(emp_dept_db, "emp", "e"),
            scan(emp_dept_db, "dept", "d"),
            method="smj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        annotate(emp_dept_db, join)
        assert join.props.order == (("e", "dno"),)

    def test_principle_of_optimality_monotone_cost(self, emp_dept_db):
        # a parent's cost is never below its child's
        join = JoinNode(
            scan(emp_dept_db, "emp", "e"),
            scan(emp_dept_db, "dept", "d"),
            method="smj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        annotate(emp_dept_db, join)
        assert join.props.cost >= join.left.props.cost
        assert join.props.cost >= join.right.props.cost


class TestEstimatedEqualsExecuted:
    """For exactly-estimable plans, estimated cost == executed page IO."""

    def check(self, db, plan, memory_pages=8):
        annotate(db, plan, memory_pages)
        assert executed_io(db, plan) == pytest.approx(plan.props.cost)

    def test_heap_scan(self, emp_dept_db):
        self.check(emp_dept_db, scan(emp_dept_db, "emp", "e"))

    def test_hash_join(self, emp_dept_db):
        self.check(
            emp_dept_db,
            JoinNode(
                scan(emp_dept_db, "emp", "e"),
                scan(emp_dept_db, "dept", "d"),
                method="hj",
                equi_keys=[(("e", "dno"), ("d", "dno"))],
            ),
        )

    def test_sort_merge_join(self, emp_dept_db):
        self.check(
            emp_dept_db,
            JoinNode(
                scan(emp_dept_db, "emp", "e"),
                scan(emp_dept_db, "dept", "d"),
                method="smj",
                equi_keys=[(("e", "dno"), ("d", "dno"))],
            ),
        )

    def test_block_nlj_with_rescans(self, emp_dept_db):
        # self-join: inner table larger than the buffer budget
        self.check(
            emp_dept_db,
            JoinNode(
                scan(emp_dept_db, "emp", "e1"),
                scan(emp_dept_db, "emp", "e2"),
                method="nlj",
                equi_keys=[(("e1", "dno"), ("e2", "dno"))],
            ),
            memory_pages=3,
        )

    def test_group_by_over_join(self, emp_dept_db):
        join = JoinNode(
            scan(emp_dept_db, "emp", "e"),
            scan(emp_dept_db, "dept", "d"),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        group = GroupByNode(
            join,
            group_keys=[("e", "dno")],
            aggregates=[("a", AggregateCall("avg", col("e.sal")))],
        )
        self.check(emp_dept_db, group)

    def test_explicit_sort(self, emp_dept_db):
        self.check(
            emp_dept_db,
            SortNode(scan(emp_dept_db, "emp", "e"), [("e", "sal")]),
            memory_pages=3,
        )
