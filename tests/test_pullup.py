"""Tests for the pull-up transformation (Section 3, Definition 1).

Every test checks *semantic equivalence*: the transformed query/plan
must produce the same bag of rows as the original, evaluated by the
brute-force reference evaluator."""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.legality import check_plan
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode
from repro.catalog.schema import RID_COLUMN, table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.errors import TransformError
from repro.sql import bind_sql
from repro.transforms import key_columns, pull_up, pull_up_plan
from repro.algebra.query import TableRef

EXAMPLE1 = """
with a1(dno, asal) as (select e2.dno, avg(e2.sal) from emp e2 group by e2.dno)
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
"""


def check_equivalent(db, sql, view_alias, pulled):
    query = bind_sql(sql, db.catalog)
    reference = evaluate_canonical(query, db.catalog)
    transformed = pull_up(query, view_alias, pulled, db.catalog)
    result = evaluate_canonical(transformed, db.catalog)
    assert rows_equal_bag(reference.rows, result.rows)
    return transformed


class TestKeyColumns:
    def test_declared_primary_key(self, emp_dept_db):
        keys = key_columns(TableRef("emp", "e"), emp_dept_db.catalog)
        assert [k.key for k in keys] == [("e", "eno")]

    def test_rid_fallback(self, nopk_db):
        keys = key_columns(TableRef("events", "x"), nopk_db.catalog)
        assert [k.key for k in keys] == [("x", RID_COLUMN)]


class TestQueryLevelPullUp:
    def test_example1_equivalence(self, emp_dept_db):
        transformed = check_equivalent(emp_dept_db, EXAMPLE1, "b", ["e1"])
        # the query collapsed to a single block
        assert transformed.base_tables == ()
        view = transformed.view("b")
        # grouping extended by e1's key and the having column e1.sal
        group_keys = {g.key for g in view.block.group_by}
        assert ("e1", "eno") in group_keys
        assert ("e1", "sal") in group_keys
        # the aggregate-referencing predicate was deferred to HAVING
        assert any(
            (None, "asal") in p.columns() for p in view.block.having
        )

    def test_aggregate_predicate_deferred_not_in_where(self, emp_dept_db):
        transformed = check_equivalent(emp_dept_db, EXAMPLE1, "b", ["e1"])
        view = transformed.view("b")
        for predicate in view.block.predicates:
            assert (None, "asal") not in predicate.columns()

    def test_nonaggregate_predicates_join_where(self, emp_dept_db):
        transformed = check_equivalent(emp_dept_db, EXAMPLE1, "b", ["e1"])
        view = transformed.view("b")
        # e1.dno = dno join predicate and the age filter moved inside
        texts = [p.display() for p in view.block.predicates]
        assert any("age" in t for t in texts)
        assert any("dno" in t for t in texts)

    def test_pull_through_nopk_uses_rid(self, nopk_db):
        sql = """
        with v(dno, total) as (
            select e.dno, sum(e.sal) from emp e group by e.dno
        )
        select x.amount, v.total from events x, v
        where x.dno = v.dno and x.kind = 1
        """
        transformed = check_equivalent(nopk_db, sql, "v", ["x"])
        group_keys = {g.key for g in transformed.view("v").block.group_by}
        assert ("x", RID_COLUMN) in group_keys

    def test_fk_join_skips_key(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e group by e.dno
        )
        select d.budget, v.asal from dept d, v
        where d.dno = v.dno
        """
        transformed = check_equivalent(emp_dept_db, sql, "v", ["d"])
        group_keys = {g.key for g in transformed.view("v").block.group_by}
        # d.dno is equated to the grouping column, so dept's key is
        # omitted (Section 3's foreign-key-join case)
        assert ("d", "dno") not in group_keys

    def test_needed_columns_exposed(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e group by e.dno
        )
        select d.budget, v.asal from dept d, emp x, v
        where d.dno = v.dno and x.eno = d.loc
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        transformed = pull_up(query, "v", ["d"], emp_dept_db.catalog)
        # d.loc is referenced by a kept predicate (x.eno = d.loc): it
        # must be exposed as a view output and the predicate rewritten
        view = transformed.view("v")
        assert any(name == "d_loc" for name, _ in view.block.select)
        result = evaluate_canonical(transformed, emp_dept_db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)

    def test_pull_multiple_relations(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e group by e.dno
        )
        select e1.sal from emp e1, dept d, v
        where e1.dno = v.dno and d.dno = v.dno and e1.sal > v.asal
        """
        transformed = check_equivalent(emp_dept_db, sql, "v", ["e1", "d"])
        assert transformed.base_tables == ()
        assert len(transformed.view("v").block.relations) == 3

    def test_empty_pull_set_is_identity(self, emp_dept_db):
        query = bind_sql(EXAMPLE1, emp_dept_db.catalog)
        assert pull_up(query, "b", [], emp_dept_db.catalog) is query

    def test_pulling_view_alias_rejected(self, emp_dept_db):
        sql = """
        with v1(dno, a) as (select e.dno, avg(e.sal) from emp e group by e.dno),
             v2(dno, b) as (select e.dno, max(e.sal) from emp e group by e.dno)
        select v1.a from v1, v2 where v1.dno = v2.dno
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        with pytest.raises(TransformError):
            pull_up(query, "v1", ["v2"], emp_dept_db.catalog)

    def test_outer_group_by_preserved(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e group by e.dno
        )
        select d.loc, max(v.asal) as m from dept d, v
        where d.dno = v.dno
        group by d.loc
        """
        check_equivalent(emp_dept_db, sql, "v", ["d"])


class TestPlanLevelPullUp:
    """Definition 1 applied to operator trees (Figure 1)."""

    def build_join(self, db, grouped_left=True):
        emp_columns = db.catalog.table("emp").columns
        inner = ScanNode(
            "emp", "e2", table_row_schema("e2", emp_columns).fields
        )
        group = GroupByNode(
            inner,
            group_keys=[("e2", "dno")],
            aggregates=[("asal", AggregateCall("avg", col("e2.sal")))],
        )
        outer = ScanNode(
            "emp",
            "e1",
            table_row_schema("e1", emp_columns).fields,
            filters=(Comparison("<", col("e1.age"), lit(25)),),
        )
        if grouped_left:
            return JoinNode(
                group,
                outer,
                method="hj",
                equi_keys=[(("e2", "dno"), ("e1", "dno"))],
                residuals=(Comparison(">", col("e1.sal"), col("asal")),),
                projection=[("e1", "sal"), (None, "asal")],
            )
        return JoinNode(
            outer,
            group,
            method="hj",
            equi_keys=[(("e1", "dno"), ("e2", "dno"))],
            residuals=(Comparison(">", col("e1.sal"), col("asal")),),
            projection=[("e1", "sal"), (None, "asal")],
        )

    def run_plan(self, db, plan):
        CostModel(db.catalog, db.params).annotate_tree(plan)
        context = ExecutionContext(db.catalog, db.io, db.params)
        return execute_plan(plan, context)

    @pytest.mark.parametrize("grouped_left", [True, False])
    def test_plan_equivalence(self, emp_dept_db, grouped_left):
        join = self.build_join(emp_dept_db, grouped_left)
        baseline = self.run_plan(emp_dept_db, join)
        pulled = pull_up_plan(
            self.build_join(emp_dept_db, grouped_left), emp_dept_db.catalog
        )
        check_plan(pulled, emp_dept_db.catalog)
        result = self.run_plan(emp_dept_db, pulled)
        assert rows_equal_bag(baseline.rows, result.rows)

    def test_output_schema_preserved(self, emp_dept_db):
        join = self.build_join(emp_dept_db)
        pulled = pull_up_plan(
            self.build_join(emp_dept_db), emp_dept_db.catalog
        )
        assert pulled.schema == join.schema  # Definition 1, item 1

    def test_group_by_is_root_and_join_below(self, emp_dept_db):
        pulled = pull_up_plan(
            self.build_join(emp_dept_db), emp_dept_db.catalog
        )
        assert isinstance(pulled, GroupByNode)
        assert isinstance(pulled.child, JoinNode)

    def test_aggregate_predicate_moved_to_having(self, emp_dept_db):
        pulled = pull_up_plan(
            self.build_join(emp_dept_db), emp_dept_db.catalog
        )
        assert any(
            (None, "asal") in p.columns() for p in pulled.having
        )
        join_below = pulled.child
        for predicate in join_below.residuals:
            assert (None, "asal") not in predicate.columns()

    def test_partner_key_in_grouping(self, emp_dept_db):
        pulled = pull_up_plan(
            self.build_join(emp_dept_db), emp_dept_db.catalog
        )
        assert ("e1", "eno") in pulled.group_keys

    def test_requires_group_by_child(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        join = JoinNode(
            ScanNode("emp", "a", table_row_schema("a", emp_columns).fields),
            ScanNode("emp", "b", table_row_schema("b", emp_columns).fields),
            method="hj",
            equi_keys=[(("a", "dno"), ("b", "dno"))],
        )
        with pytest.raises(TransformError):
            pull_up_plan(join, emp_dept_db.catalog)


class TestAggregateOnlyLink:
    """A relation connected to the view solely through a predicate on an
    aggregated output: pull-up must turn the join into a cross join
    under the group-by with the predicate deferred to HAVING."""

    SQL = """
    with v(dno, asal) as (
        select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
    )
    select e1.eno, v.dno from emp e1, v
    where e1.sal > v.asal and e1.age < 30
    """

    def test_equivalence(self, emp_dept_db):
        query = bind_sql(self.SQL, emp_dept_db.catalog)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        pulled = pull_up(query, "v", ["e1"], emp_dept_db.catalog)
        result = evaluate_canonical(pulled, emp_dept_db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)

    def test_no_join_predicates_inside(self, emp_dept_db):
        query = bind_sql(self.SQL, emp_dept_db.catalog)
        pulled = pull_up(query, "v", ["e1"], emp_dept_db.catalog)
        view = pulled.view("v")
        # the aggregate comparison is in HAVING, not WHERE
        assert any(
            (None, "asal") in p.columns() for p in view.block.having
        )
        for predicate in view.block.predicates:
            assert (None, "asal") not in predicate.columns()

    def test_candidate_enumerated_by_optimizer(self, emp_dept_db):
        from repro.optimizer import optimize_query

        query = bind_sql(self.SQL, emp_dept_db.catalog)
        result = optimize_query(query, emp_dept_db.catalog, emp_dept_db.params)
        pulled_sets = {combo.get("v", ()) for combo, _ in result.alternatives}
        assert ("e1",) in pulled_sets  # connected via the agg predicate
