"""Unit tests for the binder: resolution, views, unnesting, validation."""

import pytest

from repro.algebra.expressions import ColumnRef
from repro.errors import BindError, UnsupportedFeatureError
from repro.sql import bind_sql
from repro.transforms.decorrelate import decorrelate_query


class TestResolution:
    def test_basic_bind(self, emp_dept_db):
        query = bind_sql(
            "select e.sal from emp e where e.age < 30", emp_dept_db.catalog
        )
        assert [ref.alias for ref in query.base_tables] == ["e"]
        assert len(query.predicates) == 1
        assert query.select[0][0] == "sal"

    def test_default_alias_is_table_name(self, emp_dept_db):
        query = bind_sql("select emp.sal from emp", emp_dept_db.catalog)
        assert query.base_tables[0].alias == "emp"

    def test_unqualified_column_resolved(self, emp_dept_db):
        query = bind_sql(
            "select budget from emp e, dept d where e.dno = d.dno",
            emp_dept_db.catalog,
        )
        assert query.select[0][1] == ColumnRef("d", "budget")

    def test_ambiguous_column_rejected(self, emp_dept_db):
        with pytest.raises(BindError):
            bind_sql(
                "select dno from emp e, dept d", emp_dept_db.catalog
            )

    def test_unknown_column_rejected(self, emp_dept_db):
        with pytest.raises(BindError):
            bind_sql("select zzz from emp e", emp_dept_db.catalog)

    def test_unknown_table_rejected(self, emp_dept_db):
        with pytest.raises(BindError):
            bind_sql("select x from nothere", emp_dept_db.catalog)

    def test_duplicate_alias_rejected(self, emp_dept_db):
        with pytest.raises(BindError):
            bind_sql("select e.sal from emp e, dept e", emp_dept_db.catalog)

    def test_self_join_distinct_aliases(self, emp_dept_db):
        query = bind_sql(
            "select e1.sal from emp e1, emp e2 where e1.dno = e2.dno",
            emp_dept_db.catalog,
        )
        assert {ref.alias for ref in query.base_tables} == {"e1", "e2"}


class TestGroupingValidation:
    def test_grouped_select_must_use_group_cols(self, emp_dept_db):
        with pytest.raises(BindError):
            bind_sql(
                "select e.sal from emp e group by e.dno",
                emp_dept_db.catalog,
            )

    def test_having_must_use_group_cols_or_aggs(self, emp_dept_db):
        with pytest.raises(BindError):
            bind_sql(
                "select e.dno from emp e group by e.dno having e.sal > 5",
                emp_dept_db.catalog,
            )

    def test_aggregate_without_group_by_rejected(self, emp_dept_db):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql("select avg(e.sal) from emp e", emp_dept_db.catalog)

    def test_aggregate_naming_explicit(self, emp_dept_db):
        query = bind_sql(
            "select e.dno, avg(e.sal) as mean from emp e group by e.dno",
            emp_dept_db.catalog,
        )
        assert query.aggregates[0][0] == "mean"

    def test_aggregate_naming_generated(self, emp_dept_db):
        query = bind_sql(
            "select e.dno, avg(e.sal) from emp e group by e.dno",
            emp_dept_db.catalog,
        )
        assert query.aggregates[0][0] == "avg_sal"

    def test_duplicate_aggregates_shared(self, emp_dept_db):
        query = bind_sql(
            "select e.dno, avg(e.sal) as a from emp e group by e.dno "
            "having avg(e.sal) > 10",
            emp_dept_db.catalog,
        )
        assert len(query.aggregates) == 1

    def test_having_introduces_new_aggregate(self, emp_dept_db):
        query = bind_sql(
            "select e.dno, avg(e.sal) as a from emp e group by e.dno "
            "having max(e.sal) > 10",
            emp_dept_db.catalog,
        )
        assert len(query.aggregates) == 2


class TestViews:
    VIEW_SQL = (
        "with v(dno, asal) as "
        "(select e2.dno, avg(e2.sal) from emp e2 group by e2.dno) "
    )

    def test_aggregate_view_bound(self, emp_dept_db):
        query = bind_sql(
            self.VIEW_SQL + "select b.asal from v b where b.asal > 0",
            emp_dept_db.catalog,
        )
        assert len(query.views) == 1
        assert query.views[0].alias == "b"

    def test_view_internal_aliases_uniquified(self, emp_dept_db):
        query = bind_sql(
            self.VIEW_SQL + "select b.asal from v b, emp e2 "
            "where e2.dno = b.dno",
            emp_dept_db.catalog,
        )
        inner_aliases = query.views[0].block.aliases
        assert inner_aliases == {"b__e2"}  # no clash with outer e2

    def test_same_view_twice(self, emp_dept_db):
        query = bind_sql(
            self.VIEW_SQL + "select x.asal from v x, v y "
            "where x.dno = y.dno",
            emp_dept_db.catalog,
        )
        assert {view.alias for view in query.views} == {"x", "y"}
        all_inner = set()
        for view in query.views:
            assert not (all_inner & view.block.aliases)
            all_inner |= view.block.aliases

    def test_spj_view_flattened(self, emp_dept_db):
        query = bind_sql(
            "with rich(eno, sal) as "
            "(select e.eno, e.sal from emp e where e.sal > 50000) "
            "select r.sal from rich r where r.sal < 90000",
            emp_dept_db.catalog,
        )
        # flattened: no views left, emp joined directly
        assert query.views == ()
        assert query.base_tables[0].table == "emp"
        assert len(query.predicates) == 2

    def test_view_column_count_mismatch(self, emp_dept_db):
        with pytest.raises(BindError):
            bind_sql(
                "with v(a) as (select e.dno, avg(e.sal) from emp e "
                "group by e.dno) select v.a from v",
                emp_dept_db.catalog,
            )

    def test_view_with_having(self, emp_dept_db):
        query = bind_sql(
            "with v(dno, asal) as (select e.dno, avg(e.sal) from emp e "
            "group by e.dno having avg(e.sal) > 100) "
            "select v.asal from v",
            emp_dept_db.catalog,
        )
        assert len(query.views[0].block.having) == 1

    def test_catalog_registered_view(self, emp_dept_db):
        emp_dept_db.create_view(
            "dsal",
            ["dno", "total"],
            "select e.dno, sum(e.sal) from emp e group by e.dno",
        )
        query = bind_sql(
            "select t.total from dsal t where t.total > 0",
            emp_dept_db.catalog,
        )
        assert query.views[0].alias == "t"


class TestUnnesting:
    """The binder lowers subqueries to neutral specs; flattening is
    ``decorrelate_query``'s job (``transforms/decorrelate.py``)."""

    def test_correlated_avg_subquery(self, emp_dept_db):
        bound = bind_sql(
            "select e1.sal from emp e1 where e1.sal > "
            "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
            emp_dept_db.catalog,
        )
        assert len(bound.subqueries) == 1
        assert bound.subqueries[0].kind == "scalar"
        query = decorrelate_query(bound)
        assert not query.subqueries
        assert len(query.views) == 1
        view = query.views[0]
        assert view.block.aggregates[0][1].func_name == "avg"
        assert len(view.block.group_by) == 1
        # correlation becomes a join predicate + the comparison
        assert len(query.predicates) == 2

    def test_subquery_on_left_side(self, emp_dept_db):
        query = decorrelate_query(
            bind_sql(
                "select e1.sal from emp e1 where "
                "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)"
                " < e1.sal",
                emp_dept_db.catalog,
            )
        )
        assert len(query.views) == 1

    def test_multiple_correlations(self, emp_dept_db):
        query = decorrelate_query(
            bind_sql(
                "select e1.sal from emp e1 where e1.sal > "
                "(select min(e2.sal) from emp e2 "
                "where e2.dno = e1.dno and e2.age = e1.age)",
                emp_dept_db.catalog,
            )
        )
        view = query.views[0]
        assert len(view.block.group_by) == 2

    def test_subquery_local_predicate_stays_inside(self, emp_dept_db):
        query = decorrelate_query(
            bind_sql(
                "select e1.sal from emp e1 where e1.sal > "
                "(select avg(e2.sal) from emp e2 "
                "where e2.dno = e1.dno and e2.age > 30)",
                emp_dept_db.catalog,
            )
        )
        assert len(query.views[0].block.predicates) == 1

    def test_count_subquery_left_unit(self, emp_dept_db):
        # Kim's COUNT bug: flattening must go through a LEFT unit so
        # empty groups read as COUNT = 0, not "no row".
        query = decorrelate_query(
            bind_sql(
                "select e1.sal from emp e1 where e1.eno > "
                "(select count(*) from emp e2 where e2.dno = e1.dno)",
                emp_dept_db.catalog,
            )
        )
        assert len(query.views) == 1
        assert len(query.joins) == 1
        assert query.joins[0].kind == "left"

    def test_uncorrelated_scalar_stays_as_mark(self, emp_dept_db):
        query = decorrelate_query(
            bind_sql(
                "select e1.sal from emp e1 where e1.sal > "
                "(select avg(e2.sal) from emp e2)",
                emp_dept_db.catalog,
            )
        )
        # No correlation columns to group on: executes as a mark join.
        assert not query.views
        assert len(query.subqueries) == 1

    def test_in_subquery_semi_unit(self, emp_dept_db):
        query = decorrelate_query(
            bind_sql(
                "select e1.sal from emp e1 where e1.dno in "
                "(select d.dno from dept d where d.budget > 500000)",
                emp_dept_db.catalog,
            )
        )
        assert len(query.joins) == 1
        unit = query.joins[0]
        assert unit.kind == "semi"
        assert len(unit.filters) == 1  # budget predicate stays inside

    def test_not_in_null_aware_anti_unit(self, emp_dept_db):
        query = decorrelate_query(
            bind_sql(
                "select e1.sal from emp e1 where e1.dno not in "
                "(select d.dno from dept d)",
                emp_dept_db.catalog,
            )
        )
        assert len(query.joins) == 1
        unit = query.joins[0]
        assert unit.kind == "anti"
        assert unit.null_aware

    def test_exists_units(self, emp_dept_db):
        for prefix, kind in (("", "semi"), ("not ", "anti")):
            query = decorrelate_query(
                bind_sql(
                    "select e1.sal from emp e1 where "
                    f"{prefix}exists (select d.dno from dept d "
                    "where d.dno = e1.dno)",
                    emp_dept_db.catalog,
                )
            )
            assert query.joins[0].kind == kind
            assert not query.joins[0].null_aware

    def test_decorrelation_disabled_keeps_specs(self, emp_dept_db):
        from repro.optimizer.options import OptimizerOptions

        bound = bind_sql(
            "select e1.sal from emp e1 where e1.dno in "
            "(select d.dno from dept d)",
            emp_dept_db.catalog,
        )
        query = decorrelate_query(
            bound, OptimizerOptions(enable_decorrelation=False)
        )
        assert not query.joins
        assert len(query.subqueries) == 1

    def test_left_join_unit_bound(self, emp_dept_db):
        query = bind_sql(
            "select e1.sal from emp e1 left join dept d on e1.dno = d.dno",
            emp_dept_db.catalog,
        )
        assert len(query.joins) == 1
        assert query.joins[0].kind == "left"
        assert query.joins[0].alias == "d"

    def test_non_aggregate_subquery_rejected(self, emp_dept_db):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(
                "select e1.sal from emp e1 where e1.sal > "
                "(select e2.sal from emp e2 where e2.dno = e1.dno)",
                emp_dept_db.catalog,
            )

    def test_subquery_inside_or_rejected_at_bind_time(self, emp_dept_db):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(
                "select e1.sal from emp e1 where e1.dno = 0 or e1.sal > "
                "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
                emp_dept_db.catalog,
            )

    def test_grouped_subquery_rejected(self, emp_dept_db):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(
                "select e1.sal from emp e1 where e1.sal > "
                "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno "
                "group by e2.age)",
                emp_dept_db.catalog,
            )
