"""Differential sweep: eager aggregation on vs. off.

Eager partial group-bys and COUNT-carry pre-collapses below joins are
*plan-shape* choices only: for every engine (columnar batch, row-batch,
row-at-a-time) and every cost regime, turning the alternatives off must
leave the answer bag untouched, and turning them on must never make the
estimated cost worse (the retained-lazy-alternative guarantee). The
sweep pins both directions, the `explain` markers, the `SearchStats`
counters, and the Grace-spill execution path under a tiny memory
budget.

Data uses dyadic-rational floats (multiples of 0.25) so sums are exact
in binary — plan changes and partial-aggregate merges cannot introduce
float noise, which keeps every comparison exact equality.
"""

import pytest

from repro.cost.params import CostParams
from repro.db import Database
from repro.optimizer.options import OptimizerOptions

ENGINES = ("batch", "batch-rows", "rowexec")

EAGER_OFF = OptimizerOptions(enable_eager_aggregation=False)

#: Weighted CPU+IO objective under which the eager alternatives win on
#: this workload (pure IO ties in memory, and ties keep the lazy plan).
TUNED = CostParams(memory_pages=4, cpu_tuple_weight=0.01)

COST_SLACK = 1e-9

QUERIES = {
    # aggregate arguments on emp, probe side bonus collapses to a
    # COUNT-carry; covers every weighting rule at the merge group-by
    # (sum*cnt, count(*)->sum(cnt), count(x)->sum per non-NULL x,
    # duplicate-insensitive min, avg finalize)
    "carry": (
        "select e.dno as d, sum(e.sal) as s, count(*) as c, "
        "count(e.age) as ca, min(e.sal) as m, avg(e.sal) as a "
        "from emp e, bonus b where e.dno = b.dno group by e.dno"
    ),
    # aggregate arguments on bonus: bonus collapses to partial
    # aggregates below the join, coalesced above it
    "partial": (
        "select e.dno as d, sum(b.amt) as s, max(b.amt) as mx, "
        "count(b.amt) as c "
        "from emp e, bonus b where e.dno = b.dno group by e.dno"
    ),
    # arguments on both sides: no single subset holds them all, so no
    # eager alternative exists — the sweep still must agree
    "mixed": (
        "select e.dno as d, sum(e.sal) as se, sum(b.amt) as sb "
        "from emp e, bonus b where e.dno = b.dno group by e.dno"
    ),
    # three-way join grouped on the third relation, with HAVING over a
    # finalized aggregate: partial and carry combine in one plan
    "threeway": (
        "select d.loc as l, sum(e.sal) as s, count(*) as c "
        "from emp e, bonus b, dept d "
        "where e.dno = b.dno and b.dno = d.dno "
        "group by d.loc having sum(e.sal) > 100"
    ),
}


def build_db(params=None):
    db = Database(params)
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        nullable=["age"],
    )
    db.create_table(
        "bonus", [("bno", "int"), ("dno", "int"), ("amt", "float")]
    )
    db.create_table("dept", [("dno", "int"), ("loc", "int")])
    # dno=4 employees are all-NULL in age: COUNT(e.age) must finalize
    # to 0 (not NULL) for that group even through a partial merge
    db.insert(
        "emp",
        [
            (
                i,
                i % 5,
                (i % 40) * 0.25,
                None if (i % 7 == 0 or i % 5 == 4) else 20 + i % 30,
            )
            for i in range(200)
        ],
    )
    db.insert(
        "bonus", [(i, i % 5, (i % 16) * 0.25) for i in range(300)]
    )
    db.insert("dept", [(d, d % 2) for d in range(5)])
    db.analyze()
    return db


def bag(rows):
    return sorted(rows, key=repr)


@pytest.fixture(scope="module")
def default_db():
    return build_db()


@pytest.fixture(scope="module")
def tuned_db():
    return build_db(TUNED)


class TestDifferential:
    """Eager on vs. off: identical bags, never-worse estimated cost."""

    @pytest.mark.parametrize("name", sorted(QUERIES))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_rows_identical_default_params(
        self, default_db, name, engine
    ):
        sql = QUERIES[name]
        on = default_db.query(sql, engine=engine)
        off = default_db.query(sql, options=EAGER_OFF, engine=engine)
        assert bag(on.rows) == bag(off.rows)

    @pytest.mark.parametrize("name", sorted(QUERIES))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_rows_identical_tuned_params(self, tuned_db, name, engine):
        sql = QUERIES[name]
        on = tuned_db.query(sql, engine=engine)
        off = tuned_db.query(sql, options=EAGER_OFF, engine=engine)
        assert bag(on.rows) == bag(off.rows)

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_cost_never_worse(self, default_db, tuned_db, name):
        for db in (default_db, tuned_db):
            on = db.optimize(QUERIES[name])
            off = db.optimize(QUERIES[name], options=EAGER_OFF)
            assert on.cost <= off.cost + COST_SLACK

    def test_all_null_group_counts_zero(self, tuned_db):
        rows = {
            row[0]: row for row in tuned_db.query(QUERIES["carry"]).rows
        }
        assert rows[4][3] == 0  # COUNT over all-NULL ages, not NULL


class TestCrossEngine:
    """One plan, three executors: same bags, same IO charges."""

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_rows_and_io_identical(self, tuned_db, name):
        sql = QUERIES[name]
        results = [
            tuned_db.query(sql, engine=engine) for engine in ENGINES
        ]
        first = results[0]
        for other in results[1:]:
            assert bag(other.rows) == bag(first.rows)
            assert other.executed_io.total == first.executed_io.total


class TestAdoptionAndMarkers:
    """Counters count, explain marks, ties keep the lazy plan."""

    def test_default_costing_keeps_lazy_plan(self, default_db):
        result = default_db.optimize(QUERIES["carry"])
        assert result.stats.eager_alternatives_considered > 0
        assert result.stats.eager_alternatives_adopted == 0
        assert "eager=" not in default_db.query(QUERIES["carry"]).explain()

    def test_carry_adoption_and_markers(self, tuned_db):
        result = tuned_db.optimize(QUERIES["carry"])
        assert result.stats.eager_alternatives_adopted > 0
        text = tuned_db.query(QUERIES["carry"]).explain()
        assert "eager=carry" in text
        assert "eager=merge" in text

    def test_partial_adoption_and_markers(self, tuned_db):
        result = tuned_db.optimize(QUERIES["partial"])
        assert result.stats.eager_alternatives_adopted > 0
        text = tuned_db.query(QUERIES["partial"]).explain()
        assert "eager=partial" in text
        assert "eager=merge" in text

    def test_partial_and_carry_combine(self, tuned_db):
        text = tuned_db.query(QUERIES["threeway"]).explain()
        assert "eager=partial" in text
        assert "eager=carry" in text
        assert "eager=merge" in text

    def test_stats_summary_mentions_eager(self, tuned_db):
        summary = tuned_db.optimize(QUERIES["carry"]).stats.summary()
        assert "eager=" in summary

    def test_eager_off_generates_no_alternatives(self, tuned_db):
        result = tuned_db.optimize(QUERIES["carry"], options=EAGER_OFF)
        assert result.stats.eager_alternatives_considered == 0
        assert result.stats.eager_alternatives_adopted == 0


class TestGraceSpill:
    """At spill scale the lazy join Grace-partitions while the eager
    plan pre-collapses (and, with many groups, the eager group-by
    spills itself) — answers must agree everywhere and the adopted
    eager plan must charge strictly less IO."""

    @pytest.fixture(scope="class")
    def spill_db(self):
        db = Database(TUNED)
        db.create_table(
            "emp", [("eno", "int"), ("dno", "int"), ("sal", "float")]
        )
        db.create_table(
            "bonus", [("bno", "int"), ("dno", "int"), ("amt", "float")]
        )
        db.insert(
            "emp",
            [(i, i % 800, (i % 40) * 0.25) for i in range(6000)],
        )
        db.insert(
            "bonus",
            [(i, i % 800, (i % 16) * 0.25) for i in range(9000)],
        )
        db.analyze()
        return db

    SQL = (
        "select e.dno as d, sum(e.sal) as s, count(*) as c "
        "from emp e, bonus b where e.dno = b.dno group by e.dno"
    )

    def test_adopted_and_spilling(self, spill_db):
        result = spill_db.optimize(self.SQL)
        assert result.stats.eager_alternatives_adopted > 0
        executed = spill_db.query(self.SQL)
        text = executed.explain(analyze=True)
        assert "eager=carry" in text
        assert "spill" in text  # the eager pre-collapse itself spills

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rows_identical_under_spill(self, spill_db, engine):
        on = spill_db.query(self.SQL, engine=engine)
        off = spill_db.query(self.SQL, options=EAGER_OFF, engine=engine)
        assert bag(on.rows) == bag(off.rows)
        assert on.executed_io.total < off.executed_io.total

    def test_io_identical_across_engines_under_spill(self, spill_db):
        totals = {
            spill_db.query(self.SQL, engine=engine).executed_io.total
            for engine in ENGINES
        }
        assert len(totals) == 1
