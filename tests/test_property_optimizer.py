"""Property-based end-to-end optimizer tests over random canonical
queries: every optimizer level returns the reference result, and the
full optimizer is never costlier than the traditional one (the paper's
guarantee, randomized)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.optimizer import optimize_query, optimize_traditional
from repro.workloads import RandomQueryConfig, random_queries


@st.composite
def workload(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    db, queries = random_queries(
        RandomQueryConfig(seed=seed, queries=3, fact_rows=120, dim_rows=15)
    )
    index = draw(st.integers(min_value=0, max_value=len(queries) - 1))
    return db, queries[index]


class TestRandomizedOptimizer:
    @given(case=workload())
    @settings(max_examples=25, deadline=None)
    def test_full_optimizer_correct(self, case):
        db, query = case
        reference = evaluate_canonical(query, db.catalog)
        result = optimize_query(query, db.catalog, db.params)
        rows, _ = db.execute_plan(result.plan)
        assert rows_equal_bag(reference.rows, rows.rows)

    @given(case=workload())
    @settings(max_examples=25, deadline=None)
    def test_traditional_optimizer_correct(self, case):
        db, query = case
        reference = evaluate_canonical(query, db.catalog)
        result = optimize_traditional(query, db.catalog, db.params)
        rows, _ = db.execute_plan(result.plan)
        assert rows_equal_bag(reference.rows, rows.rows)

    @given(case=workload())
    @settings(max_examples=25, deadline=None)
    def test_guarantee_never_worse(self, case):
        db, query = case
        full = optimize_query(query, db.catalog, db.params)
        traditional = optimize_traditional(query, db.catalog, db.params)
        assert full.cost <= traditional.cost + 1e-9

    @given(case=workload())
    @settings(max_examples=15, deadline=None)
    def test_estimated_cost_positive_and_finite(self, case):
        db, query = case
        result = optimize_query(query, db.catalog, db.params)
        assert 0 < result.cost < float("inf")
