"""Unit tests for schemas, statistics, and the catalog."""

import pytest

from repro.catalog import Catalog, Column, Field, RowSchema, analyze_table
from repro.catalog.schema import RID_COLUMN, table_row_schema
from repro.datatypes import DataType
from repro.errors import CatalogError, SchemaError
from repro.storage import HeapTable


class TestRowSchema:
    def schema(self):
        return RowSchema(
            [
                Field("e", "dno", DataType.INT),
                Field("e", "sal", DataType.FLOAT),
                Field("d", "dno", DataType.INT),
                Field(None, "asal", DataType.FLOAT),
            ]
        )

    def test_width_sums_dtype_widths(self):
        assert self.schema().width == 4 + 8 + 4 + 8

    def test_qualified_resolution(self):
        assert self.schema().index_of("d", "dno") == 2

    def test_unqualified_unique(self):
        assert self.schema().index_of(None, "sal") == 1

    def test_unqualified_ambiguous(self):
        with pytest.raises(SchemaError):
            self.schema().index_of(None, "dno")

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            self.schema().index_of("e", "nope")

    def test_computed_field_resolution(self):
        assert self.schema().index_of(None, "asal") == 3

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            RowSchema(
                [
                    Field("e", "x", DataType.INT),
                    Field("e", "x", DataType.INT),
                ]
            )

    def test_concat_preserves_order(self):
        left = RowSchema([Field("a", "x", DataType.INT)])
        right = RowSchema([Field("b", "y", DataType.INT)])
        combined = left.concat(right)
        assert [f.key for f in combined] == [("a", "x"), ("b", "y")]

    def test_project_reorders(self):
        projected = self.schema().project([("d", "dno"), ("e", "sal")])
        assert [f.key for f in projected] == [("d", "dno"), ("e", "sal")]

    def test_aliases_excludes_computed(self):
        assert self.schema().aliases() == {"e", "d"}

    def test_table_row_schema_with_rid(self):
        schema = table_row_schema(
            "t", [Column("a", DataType.INT)], include_rid=True
        )
        assert schema.has("t", RID_COLUMN)


class TestStatistics:
    def test_analyze_counts(self):
        table = HeapTable(
            "t", [Column("k", DataType.INT), Column("g", DataType.INT)]
        )
        for i in range(100):
            table.insert((i, i % 4))
        stats = analyze_table(table)
        assert stats.row_count == 100
        assert stats.page_count == table.num_pages
        assert stats.column("k").n_distinct == 100
        assert stats.column("g").n_distinct == 4
        assert stats.column("g").min_value == 0
        assert stats.column("g").max_value == 3

    def test_analyze_empty_table(self):
        table = HeapTable("t", [Column("k", DataType.INT)])
        stats = analyze_table(table)
        assert stats.row_count == 0
        assert stats.column("k").n_distinct == 0

    def test_spread_for_numeric(self):
        table = HeapTable("t", [Column("k", DataType.INT)])
        table.insert_many([(5,), (15,)])
        stats = analyze_table(table)
        assert stats.column("k").spread == 10.0

    def test_spread_none_for_strings(self):
        table = HeapTable("t", [Column("s", DataType.STR)])
        table.insert_many([("a",), ("b",)])
        assert analyze_table(table).column("s").spread is None


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("a", DataType.INT)])
        assert catalog.has_table("t")
        assert catalog.table("t").name == "t"

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("a", DataType.INT)])
        with pytest.raises(CatalogError):
            catalog.create_table("t", [Column("a", DataType.INT)])

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")

    def test_primary_key_validated(self):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            catalog.create_table(
                "t", [Column("a", DataType.INT)], primary_key=["nope"]
            )

    def test_primary_key_stored(self):
        catalog = Catalog()
        catalog.create_table(
            "t", [Column("a", DataType.INT)], primary_key=["a"]
        )
        assert catalog.primary_key("t") == ("a",)

    def test_foreign_key_round_trip(self):
        catalog = Catalog()
        catalog.create_table(
            "p", [Column("id", DataType.INT)], primary_key=["id"]
        )
        catalog.create_table("c", [Column("pid", DataType.INT)])
        fk = catalog.add_foreign_key("c", ["pid"], "p", ["id"])
        assert catalog.foreign_keys("c") == [fk]

    def test_foreign_key_length_mismatch(self):
        catalog = Catalog()
        catalog.create_table("p", [Column("id", DataType.INT)])
        catalog.create_table(
            "c", [Column("x", DataType.INT), Column("y", DataType.INT)]
        )
        with pytest.raises(CatalogError):
            catalog.add_foreign_key("c", ["x", "y"], "p", ["id"])

    def test_stats_refresh_after_insert(self):
        catalog = Catalog()
        table = catalog.create_table("t", [Column("a", DataType.INT)])
        assert catalog.stats("t").row_count == 0
        table.insert((1,))
        assert catalog.stats("t").row_count == 1

    def test_index_on_prefix(self):
        catalog = Catalog()
        catalog.create_table(
            "t", [Column("a", DataType.INT), Column("b", DataType.INT)]
        )
        catalog.create_index("t_ab", "t", ["a", "b"])
        info = catalog.info("t")
        assert info.index_on(["a"]).name == "t_ab"
        assert info.index_on(["b"]) is None

    def test_duplicate_index_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("a", DataType.INT)])
        catalog.create_index("i", "t", ["a"])
        with pytest.raises(CatalogError):
            catalog.create_index("i", "t", ["a"])

    def test_views_registry(self):
        catalog = Catalog()
        catalog.register_view("v", object())
        assert catalog.has_view("v")
        assert catalog.view_names() == ["v"]
        catalog.drop_view("v")
        assert not catalog.has_view("v")

    def test_view_table_name_clash(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("a", DataType.INT)])
        with pytest.raises(CatalogError):
            catalog.register_view("t", object())

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("a", DataType.INT)])
        catalog.drop_table("t")
        assert not catalog.has_table("t")
