"""Property test: estimated IO == executed IO on filter-free plans.

On plans without predicates the cardinality estimates are exact (exact
statistics, no selectivity assumptions), so the cost model's number must
match the executor's charged IO for every join method, any data, any
memory size — the strongest statement of the shared-formula design.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostParams, Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import col
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan


@st.composite
def join_case(draw):
    left_rows = draw(st.integers(min_value=0, max_value=400))
    right_rows = draw(st.integers(min_value=0, max_value=400))
    keys = draw(st.integers(min_value=1, max_value=8))
    memory = draw(st.sampled_from([3, 4, 8, 64]))
    method = draw(st.sampled_from(["hj", "smj", "nlj"]))
    return left_rows, right_rows, keys, memory, method


def build(left_rows, right_rows, keys, memory):
    db = Database(CostParams(memory_pages=memory))
    db.create_table("l", [("k", "int"), ("v", "float")])
    db.create_table("r", [("k", "int"), ("w", "float")])
    db.insert("l", [(i % keys, float(i)) for i in range(left_rows)])
    db.insert("r", [(i % keys, float(i)) for i in range(right_rows)])
    db.analyze()
    return db


def scan(db, table, alias):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
    )


class TestEstimatedEqualsExecuted:
    @given(case=join_case())
    @settings(max_examples=40, deadline=None)
    def test_joins(self, case):
        left_rows, right_rows, keys, memory, method = case
        db = build(left_rows, right_rows, keys, memory)
        plan = JoinNode(
            scan(db, "l", "a"),
            scan(db, "r", "b"),
            method=method,
            equi_keys=[(("a", "k"), ("b", "k"))],
        )
        CostModel(db.catalog, db.params).annotate_tree(plan)
        context = ExecutionContext(db.catalog, db.io, db.params)
        with db.io.measure() as span:
            execute_plan(plan, context)
        assert span.delta.total == round(plan.props.cost)

    @given(
        rows=st.integers(min_value=0, max_value=800),
        keys=st.integers(min_value=1, max_value=600),
        memory=st.sampled_from([3, 8, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_by(self, rows, keys, memory):
        db = build(rows, 0, max(1, keys), memory)
        plan = GroupByNode(
            scan(db, "l", "a"),
            group_keys=[("a", "k")],
            aggregates=[("s", AggregateCall("sum", col("a.v")))],
        )
        CostModel(db.catalog, db.params).annotate_tree(plan)
        context = ExecutionContext(db.catalog, db.io, db.params)
        with db.io.measure() as span:
            execute_plan(plan, context)
        assert span.delta.total == round(plan.props.cost)
