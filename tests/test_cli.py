"""Tests for the interactive shell."""

import io

import pytest

from repro.cli import Shell, format_rows, make_demo_database


@pytest.fixture
def shell():
    out = io.StringIO()
    return Shell(make_demo_database(), out=out), out


def output_of(shell_and_out, *statements):
    shell, out = shell_and_out
    for statement in statements:
        if not shell.handle(statement):
            break
    return out.getvalue()


class TestFormatting:
    def test_format_rows_aligns(self):
        lines = format_rows(["a", "long_name"], [(1, 2.5), (100, 3.0)])
        assert lines[0].startswith("a ")
        assert "(2 rows)" in lines[-1]

    def test_single_row_grammar(self):
        lines = format_rows(["x"], [(1,)])
        assert lines[-1] == "(1 row)"

    def test_float_rendering(self):
        lines = format_rows(["x"], [(1.23456,)])
        assert "1.23" in lines[2]


class TestShell:
    def test_select_prints_table_and_io(self, shell):
        text = output_of(
            shell, "select e.dno from emp e where e.dno = 1 limit 2;"
        )
        assert "dno" in text
        assert "page IOs" in text

    def test_list_relations(self, shell):
        text = output_of(shell, "\\d")
        assert "table emp" in text
        assert "table dept" in text

    def test_describe_table(self, shell):
        text = output_of(shell, "\\d emp")
        assert "eno int (pk)" in text
        assert "fk (dno) -> dept(dno)" in text

    def test_describe_missing_table(self, shell):
        assert "no table" in output_of(shell, "\\d nothere")

    def test_explain(self, shell):
        text = output_of(
            shell, "\\explain select e.sal from emp e where e.dno = 3"
        )
        assert "Scan emp" in text
        assert "estimated cost" in text

    def test_analyze(self, shell):
        text = output_of(
            shell, "\\analyze select e.sal from emp e where e.dno = 3"
        )
        assert "actual rows=" in text

    def test_switch_optimizer(self, shell):
        text = output_of(shell, "\\e traditional")
        assert "optimizer level: traditional" in text

    def test_bad_optimizer_level(self, shell):
        text = output_of(shell, "\\e warp9")
        assert "unknown level" in text

    def test_sql_error_reported_not_raised(self, shell):
        text = output_of(shell, "select nope from emp e;")
        assert "error:" in text

    def test_unknown_meta_command(self, shell):
        assert "unknown command" in output_of(shell, "\\frobnicate")

    def test_quit_returns_false(self, shell):
        interpreter, _ = shell
        assert interpreter.handle("\\q") is False

    def test_empty_statement_noop(self, shell):
        interpreter, out = shell
        assert interpreter.handle("   ;  ") is True

    def test_run_reads_stream(self):
        out = io.StringIO()
        interpreter = Shell(make_demo_database(), out=out)
        source = io.StringIO("\\d\n\\q\n")
        interpreter.run(source)
        text = out.getvalue()
        assert "table emp" in text
        assert text.rstrip().endswith("bye")

    def test_run_script_file(self, tmp_path):
        import io

        from repro import Database
        from repro.cli import Shell

        script = tmp_path / "setup.sql"
        script.write_text(
            "create table t (a int);\n"
            "insert into t values (1), (2), (3);\n"
            "select t.a from t where t.a > 1;\n"
        )
        out = io.StringIO()
        shell = Shell(Database(), out=out)
        shell.handle(f"\\i {script}")
        text = out.getvalue()
        assert "(2 rows)" in text

    def test_run_script_missing_file(self, shell):
        assert "cannot read" in output_of(shell, "\\i /no/such/file.sql")

    def test_run_script_usage(self, shell):
        assert "usage" in output_of(shell, "\\i")

    def test_multiline_statement(self):
        out = io.StringIO()
        interpreter = Shell(make_demo_database(), out=out)
        source = io.StringIO(
            "select e.dno\nfrom emp e\nwhere e.dno = 2\nlimit 1;\n\\q\n"
        )
        interpreter.run(source)
        assert "(1 row)" in out.getvalue()


class TestFuzzCommand:
    """Exit codes and outputs of ``python -m repro fuzz``."""

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "fuzz",
                "--seeds", "1",
                "--profile", "smoke",
                "--quiet",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no divergences" in out
        decoded = __import__("json").loads(report_path.read_text())
        assert decoded["seeds_run"] == 1

    def test_unknown_profile_exits_two(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--profile", "warp-speed", "--quiet"])
        assert code == 2
        assert "unknown fuzz profile" in capsys.readouterr().err

    def test_bad_flag_exits_two(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--bogus"]) == 2

    def test_help_exits_zero(self, capsys):
        from repro.cli import fuzz_main

        assert fuzz_main(["--help"]) == 0
        assert "--seeds" in capsys.readouterr().out

    def test_divergences_exit_one(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        from repro.testing import CONFIGS, metamorphic, runner
        from repro.testing.metamorphic import EngineConfig

        bogus = EngineConfig("bogus", optimizer="nosuch")

        def patched_check(script, **kwargs):
            return metamorphic.check_script(
                script, configs=(CONFIGS[0], bogus)
            )

        monkeypatch.setattr(runner, "check_script", patched_check)
        code = main(
            [
                "fuzz",
                "--seeds", "1",
                "--profile", "smoke",
                "--quiet",
                "--no-shrink",
                "--corpus", str(tmp_path / "corpus"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert list((tmp_path / "corpus").glob("*.sql"))
