"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import tokenize


def kinds(sql):
    return [(t.kind, t.text) for t in tokenize(sql) if t.kind != "eof"]


class TestTokenKinds:
    def test_keywords_lowercased(self):
        assert kinds("SELECT froM") == [
            ("keyword", "select"),
            ("keyword", "from"),
        ]

    def test_identifiers_preserve_case(self):
        assert kinds("Emp e1") == [("name", "Emp"), ("name", "e1")]

    def test_integer_and_float(self):
        assert kinds("42 3.5") == [("number", "42"), ("number", "3.5")]

    def test_qualified_column_is_three_tokens(self):
        assert kinds("e.sal") == [
            ("name", "e"),
            ("punctuation", "."),
            ("name", "sal"),
        ]

    def test_number_then_dot_name(self):
        # "1.e" must not swallow the dot into the number
        assert kinds("1.e") == [
            ("number", "1"),
            ("punctuation", "."),
            ("name", "e"),
        ]

    def test_string_literal(self):
        assert kinds("'hello world'") == [("string", "hello world")]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_comparators(self):
        assert [t for _, t in kinds("= < <= > >= != <>")] == [
            "=",
            "<",
            "<=",
            ">",
            ">=",
            "!=",
            "!=",
        ]

    def test_punctuation(self):
        assert [k for k, _ in kinds("( ) , * + - /")] == ["punctuation"] * 7

    def test_comments_skipped(self):
        assert kinds("select -- a comment\nx") == [
            ("keyword", "select"),
            ("name", "x"),
        ]

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_error_reports_location(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("select\n  @")
        assert info.value.line == 2

    def test_eof_token_present(self):
        assert tokenize("x")[-1].kind == "eof"

    def test_underscore_names(self):
        assert kinds("_rid foo_bar") == [
            ("name", "_rid"),
            ("name", "foo_bar"),
        ]
