"""Tests for the shared Φ(V′, W) DP (Section 5.3's subplan sharing)."""

import pytest

from repro import OptimizerOptions
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.optimizer import optimize_query
from repro.sql import bind_sql
from repro.workloads import RandomQueryConfig, random_queries

EXAMPLE1 = """
with a1(dno, asal) as (select e2.dno, avg(e2.sal) from emp e2 group by e2.dno)
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
"""

MULTI_PULL = """
with v(dno, asal) as (select e.dno, avg(e.sal) from emp e group by e.dno)
select e1.sal, d.budget from emp e1, dept d, v
where e1.dno = v.dno and d.dno = v.dno and e1.sal > v.asal
"""


def run_both(db, sql):
    query = bind_sql(sql, db.catalog)
    shared = optimize_query(
        query, db.catalog, db.params, OptimizerOptions(share_view_dp=True)
    )
    unshared = optimize_query(
        query, db.catalog, db.params, OptimizerOptions(share_view_dp=False)
    )
    return query, shared, unshared


class TestSharedDp:
    @pytest.mark.parametrize("sql", [EXAMPLE1, MULTI_PULL])
    def test_same_cost_as_unshared(self, emp_dept_db, sql):
        _, shared, unshared = run_both(emp_dept_db, sql)
        assert shared.cost == pytest.approx(unshared.cost)

    @pytest.mark.parametrize("sql", [EXAMPLE1, MULTI_PULL])
    def test_shared_plan_correct(self, emp_dept_db, sql):
        query, shared, _ = run_both(emp_dept_db, sql)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        rows, _ = emp_dept_db.execute_plan(shared.plan)
        assert rows_equal_bag(reference.rows, rows.rows)

    def test_same_alternative_costs(self, emp_dept_db):
        _, shared, unshared = run_both(emp_dept_db, MULTI_PULL)
        shared_costs = {
            tuple(sorted(combo.items())): cost
            for combo, cost in shared.alternatives
        }
        unshared_costs = {
            tuple(sorted(combo.items())): cost
            for combo, cost in unshared.alternatives
        }
        assert set(shared_costs) == set(unshared_costs)
        for key, cost in shared_costs.items():
            assert cost == pytest.approx(unshared_costs[key]), key

    def test_randomized_equivalence(self):
        db, queries = random_queries(
            RandomQueryConfig(seed=88, queries=8, fact_rows=150, dim_rows=15)
        )
        for query in queries:
            shared = optimize_query(
                query, db.catalog, db.params,
                OptimizerOptions(share_view_dp=True),
            )
            unshared = optimize_query(
                query, db.catalog, db.params,
                OptimizerOptions(share_view_dp=False),
            )
            assert shared.cost == pytest.approx(unshared.cost)
            reference = evaluate_canonical(query, db.catalog)
            rows, _ = db.execute_plan(shared.plan)
            assert rows_equal_bag(reference.rows, rows.rows)

    def test_guarantee_still_holds(self, emp_dept_db):
        from repro.optimizer import optimize_traditional

        query = bind_sql(MULTI_PULL, emp_dept_db.catalog)
        shared = optimize_query(query, emp_dept_db.catalog, emp_dept_db.params)
        traditional = optimize_traditional(
            query, emp_dept_db.catalog, emp_dept_db.params
        )
        assert shared.cost <= traditional.cost + 1e-9

    def test_shared_dp_reuses_plans_across_combinations(self, emp_dept_db):
        sql = """
        with v1(dno, a) as (select e.dno, avg(e.sal) from emp e group by e.dno),
             v2(dno, m) as (select f.dno, max(f.sal) from emp f group by f.dno)
        select d.budget, v1.a, v2.m from dept d, v1, v2
        where d.dno = v1.dno and v1.dno = v2.dno
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        result = optimize_query(query, emp_dept_db.catalog, emp_dept_db.params)
        # several combinations, but each (view, W) optimized once
        assert result.stats.view_plans_reused > 0
