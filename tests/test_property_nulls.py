"""NULL / empty-group aggregate semantics, cross-checked four ways.

Property tests drive NULL-bearing data through the batch engine, the
row-at-a-time engine, the brute-force reference evaluator, and a real
SQLite database, and assert they all agree: aggregates skip NULLs,
all-NULL groups yield NULL (``count`` yields 0), NULL grouping keys
form one group, comparisons with NULL drop rows, and NULL join keys
never match.
"""

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.engine.reference import rows_equal_bag
from repro.workloads.generator import RandomQueryConfig, build_star_database

maybe_int = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
rows_strategy = st.lists(
    st.tuples(maybe_int, maybe_int), min_size=0, max_size=30
)

AGG_SQL = (
    "select t.k as k, count(*) as n, count(t.v) as nv, sum(t.v) as s, "
    "avg(t.v) as a, min(t.v) as lo, max(t.v) as hi from t t group by t.k"
)
HAVING_SQL = (
    "select t.k as k, sum(t.v) as s from t t "
    "group by t.k having sum(t.v) > 0"
)
FILTER_SQL = "select t.k as k, t.v as v from t t where t.v > 0"
JOIN_SQL = (
    "select a.v as x, b.v as y from t a, u b where a.k = b.k"
)


def build_engine_db(t_rows, u_rows=()):
    db = Database()
    db.create_table("t", [("k", "int"), ("v", "int")], nullable=["k", "v"])
    db.insert("t", t_rows)
    db.create_table("u", [("k", "int"), ("v", "int")], nullable=["k", "v"])
    db.insert("u", u_rows)
    return db


def build_sqlite_db(t_rows, u_rows=()):
    connection = sqlite3.connect(":memory:")
    connection.execute("create table t (k integer, v integer)")
    connection.executemany("insert into t values (?, ?)", list(t_rows))
    connection.execute("create table u (k integer, v integer)")
    connection.executemany("insert into u values (?, ?)", list(u_rows))
    return connection


def all_agree(db, connection, sql):
    """Run one query everywhere and assert bag equality."""
    batch = [tuple(row) for row in db.query(sql).rows]
    rowexec = [tuple(row) for row in db.query(sql, engine="rowexec").rows]
    reference = [tuple(row) for row in db.reference(sql).rows]
    sqlite_rows = [tuple(row) for row in connection.execute(sql)]
    assert rows_equal_bag(batch, sqlite_rows), (sql, batch, sqlite_rows)
    assert rows_equal_bag(rowexec, sqlite_rows), (sql, rowexec, sqlite_rows)
    assert rows_equal_bag(reference, sqlite_rows), (
        sql,
        reference,
        sqlite_rows,
    )


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_null_aggregates_agree(rows):
    db = build_engine_db(rows)
    connection = build_sqlite_db(rows)
    try:
        all_agree(db, connection, AGG_SQL)
        all_agree(db, connection, HAVING_SQL)
        all_agree(db, connection, FILTER_SQL)
    finally:
        connection.close()


@settings(max_examples=25, deadline=None)
@given(t_rows=rows_strategy, u_rows=rows_strategy)
def test_null_join_keys_agree(t_rows, u_rows):
    db = build_engine_db(t_rows, u_rows)
    connection = build_sqlite_db(t_rows, u_rows)
    try:
        all_agree(db, connection, JOIN_SQL)
    finally:
        connection.close()


def test_all_null_group_yields_null():
    """An all-NULL aggregate input is NULL for sum/avg/min/max, 0 for
    count(col) — pinned directly, not just differentially."""
    db = build_engine_db([(1, None), (1, None), (2, 3)])
    rows = {row[0]: row for row in db.query(AGG_SQL).rows}
    assert rows[1] == (1, 2, 0, None, None, None, None)
    assert rows[2] == (2, 1, 1, 3, 3.0, 3, 3)


def test_star_schema_null_shapes_agree():
    """The NULL-enabled star generator feeds all four evaluators the
    same answers (grouped measures, NULL cat keys, all-NULL qty group
    under flag = 2, reserved empty categories)."""
    config = RandomQueryConfig(
        seed=5,
        fact_rows=120,
        dim_rows=15,
        categories=6,
        null_fraction=0.3,
        empty_categories=2,
    )
    db = build_star_database(config)

    connection = sqlite3.connect(":memory:")
    for table in ("dim1", "dim2", "fact"):
        schema = db.catalog.table(table)
        columns = ", ".join(column.name for column in schema.columns)
        holes = ", ".join("?" for _ in schema.columns)
        connection.execute(f"create table {table} ({columns})")
        connection.executemany(
            f"insert into {table} values ({holes})",
            [tuple(row) for row in schema.rows],
        )

    queries = [
        "select f.flag as g, count(*) as n, count(f.qty) as nq, "
        "sum(f.qty) as s, avg(f.price) as p from fact f group by f.flag",
        "select d.cat as c, count(*) as n, sum(d.val) as s "
        "from dim1 d group by d.cat",
        "select d.cat as c, sum(f.qty) as s from fact f, dim1 d "
        "where f.d1_id = d.d1_id group by d.cat having sum(f.qty) > 50",
        "select f.flag as g, max(f.qty) as m from fact f "
        "where f.price > 100 group by f.flag",
    ]
    try:
        for sql in queries:
            all_agree(db, connection, sql)
    finally:
        connection.close()

    # the generator's structural guarantees
    fact = db.catalog.table("fact")
    position = [c.name for c in fact.columns].index("qty")
    flag_position = [c.name for c in fact.columns].index("flag")
    flagged = [row for row in fact.rows if row[flag_position] == 2]
    assert flagged and all(row[position] is None for row in flagged)
    cat_position = [c.name for c in db.catalog.table("dim1").columns].index(
        "cat"
    )
    cats = {
        row[cat_position]
        for row in db.catalog.table("dim1").rows
        if row[cat_position] is not None
    }
    assert cats and max(cats) < config.categories - config.empty_categories


def test_default_config_stays_null_free():
    """null_fraction defaults off: the optimizer experiments keep the
    paper's NULL-free data."""
    db = build_star_database(RandomQueryConfig(seed=3, fact_rows=50))
    for table in ("dim1", "dim2", "fact"):
        for row in db.catalog.table(table).rows:
            assert None not in tuple(row)
