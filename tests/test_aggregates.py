"""Unit tests for aggregate functions and the decomposability protocol."""

import math

import pytest

from repro.algebra.aggregates import (
    AggregateCall,
    AggregateFunction,
    Accumulator,
    aggregate_function,
    known_aggregates,
    register_aggregate,
)
from repro.algebra.expressions import col
from repro.catalog import Field, RowSchema
from repro.datatypes import DataType
from repro.errors import PlanError


def run(func_name, values):
    acc = aggregate_function(func_name).make_accumulator()
    for value in values:
        acc.add(value)
    return acc.value()


class TestBuiltins:
    def test_count(self):
        assert run("count", [5, 5, 7]) == 3

    def test_sum(self):
        assert run("sum", [1.0, 2.0, 3.5]) == 6.5

    def test_avg(self):
        assert run("avg", [2.0, 4.0]) == 3.0

    def test_min_max(self):
        assert run("min", [3, 1, 2]) == 1
        assert run("max", [3, 1, 2]) == 3

    def test_stddev_population(self):
        assert run("stddev", [2.0, 4.0]) == pytest.approx(1.0)

    def test_stddev_constant_is_zero(self):
        assert run("stddev", [5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_median_odd(self):
        assert run("median", [3, 1, 2]) == 2

    def test_median_even(self):
        assert run("median", [1, 2, 3, 4]) == 2.5

    def test_empty_group_is_null(self):
        # SQL semantics: every aggregate but COUNT is NULL over an
        # empty (or all-NULL) input.
        for name in ("sum", "avg", "min", "max", "stddev", "median"):
            assert run(name, []) is None
            assert run(name, [None, None]) is None

    def test_null_values_are_skipped(self):
        assert run("count", [1, None, 2]) == 2
        assert run("sum", [1, None, 2]) == 3
        assert run("avg", [1, None, 3]) == 2
        assert run("min", [None, 4, 2]) == 2
        assert run("max", [None, 4, 2]) == 4
        assert run("median", [None, 1, 2, 3]) == 2

    def test_empty_count_is_zero(self):
        assert run("count", []) == 0

    def test_unknown_aggregate(self):
        with pytest.raises(PlanError):
            aggregate_function("frobnicate")


class TestMerge:
    """merge() must behave as if the inputs were one stream — the core
    decomposability requirement of Section 4.2."""

    @pytest.mark.parametrize(
        "name", ["count", "sum", "avg", "min", "max", "stddev", "median"]
    )
    def test_merge_equals_single_stream(self, name):
        values = [1.0, 5.0, 2.0, 8.0, 8.0, 3.0]
        whole = aggregate_function(name).make_accumulator()
        for value in values:
            whole.add(value)
        left = aggregate_function(name).make_accumulator()
        right = aggregate_function(name).make_accumulator()
        for value in values[:3]:
            left.add(value)
        for value in values[3:]:
            right.add(value)
        left.merge(right)
        assert left.value() == pytest.approx(whole.value())

    def test_merge_with_empty_side(self):
        left = aggregate_function("min").make_accumulator()
        left.add(4)
        right = aggregate_function("min").make_accumulator()
        left.merge(right)
        assert left.value() == 4


class TestDecomposition:
    def schema(self):
        return RowSchema([Field("t", "x", DataType.FLOAT)])

    def finalize_value(self, name, values):
        """Compute an aggregate through its partial/coalesce/finalize
        pipeline split across two partitions, and return the result."""
        function = aggregate_function(name)
        decomposition = function.decompose(col("t.x"))
        assert decomposition is not None
        # partial accumulators per partition; partial args are
        # expressions over the input row (e.g. x*x for STDDEV)
        input_schema = self.schema()
        partitions = [values[: len(values) // 2], values[len(values) // 2 :]]
        partial_rows = []
        for partition in partitions:
            row = []
            for partial_call in decomposition.partials:
                acc = partial_call.function().make_accumulator()
                evaluate = (
                    partial_call.arg.bind(input_schema)
                    if partial_call.arg is not None
                    else None
                )
                for value in partition:
                    acc.add(
                        evaluate((value,)) if evaluate is not None else None
                    )
                row.append(acc.value())
            partial_rows.append(tuple(row))
        # coalesce across partitions
        coalesced = []
        for position, coalescer in enumerate(decomposition.coalescers):
            acc = aggregate_function(coalescer).make_accumulator()
            for row in partial_rows:
                acc.add(row[position])
            coalesced.append(acc.value())
        # finalize via the expression over a synthetic schema
        fields = [
            Field(None, f"c{i}", DataType.FLOAT)
            for i in range(len(coalesced))
        ]
        schema = RowSchema(fields)
        columns = [col(f"c{i}") for i in range(len(coalesced))]
        final = decomposition.finalize(columns)
        return final.bind(schema)(tuple(coalesced))

    @pytest.mark.parametrize("name", ["sum", "count", "min", "max", "avg"])
    def test_decomposition_matches_direct(self, name):
        values = [1.0, 2.0, 2.0, 7.0, 10.0]
        direct = run(name, values)
        assert self.finalize_value(name, values) == pytest.approx(direct)

    def test_stddev_decomposition(self):
        values = [1.0, 3.0, 5.0, 9.0]
        assert self.finalize_value("stddev", values) == pytest.approx(
            run("stddev", values)
        )

    def test_median_not_decomposable(self):
        assert aggregate_function("median").decompose(col("t.x")) is None
        assert not aggregate_function("median").decomposable

    def test_builtins_decomposable_flag(self):
        for name in ("sum", "count", "avg", "min", "max", "stddev"):
            assert aggregate_function(name).decomposable


class TestAggregateCall:
    def test_output_dtype_count_is_int(self):
        call = AggregateCall("count", None)
        schema = RowSchema([Field("t", "x", DataType.FLOAT)])
        assert call.output_dtype(schema) is DataType.INT

    def test_output_dtype_avg_is_float(self):
        call = AggregateCall("avg", col("t.x"))
        schema = RowSchema([Field("t", "x", DataType.INT)])
        assert call.output_dtype(schema) is DataType.FLOAT

    def test_sum_preserves_input_dtype(self):
        call = AggregateCall("sum", col("t.x"))
        schema = RowSchema([Field("t", "x", DataType.INT)])
        assert call.output_dtype(schema) is DataType.INT

    def test_substitute_rewrites_arg(self):
        call = AggregateCall("sum", col("t.x"))
        rewritten = call.substitute({("t", "x"): col("u.y")})
        assert rewritten.columns() == {("u", "y")}

    def test_count_star_has_no_columns(self):
        assert AggregateCall("count", None).columns() == frozenset()

    def test_display(self):
        assert AggregateCall("avg", col("e.sal")).display() == "avg(e.sal)"
        assert AggregateCall("count", None).display() == "count(*)"


class TestUserDefined:
    def test_register_and_use(self):
        class Second(AggregateFunction):
            """Keeps the second value seen (an arbitrary UDF)."""

            name = "second_test_only"

            def make_accumulator(self):
                outer = self

                class _Acc(Accumulator):
                    def __init__(self):
                        self.values = []

                    def add(self, value):
                        self.values.append(value)

                    def merge(self, other):
                        self.values.extend(other.values)

                    def value(self):
                        return self.values[1]

                return _Acc()

        register_aggregate(Second())
        try:
            assert "second_test_only" in known_aggregates()
            assert run("second_test_only", [7, 8, 9]) == 8
        finally:
            # Registry is process-global; leaking the probe UDF would
            # make it visible to every test that enumerates
            # known_aggregates() after this one.
            from repro.algebra.aggregates import _REGISTRY

            _REGISTRY.pop("second_test_only", None)

    def test_register_requires_name(self):
        class Nameless(AggregateFunction):
            pass

        with pytest.raises(PlanError):
            register_aggregate(Nameless())
