"""Property-based tests: physical operators against naive models."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import col
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode, SortNode
from repro.catalog.schema import table_row_schema
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import rows_equal_bag

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=-20, max_value=20),
    ),
    min_size=0,
    max_size=25,
)


def build_db(left_rows, right_rows):
    db = Database()
    db.create_table("l", [("k", "int"), ("v", "int")])
    db.create_table("r", [("k", "int"), ("w", "int")])
    db.insert("l", left_rows)
    db.insert("r", right_rows)
    db.analyze()
    return db


def scan(db, table, alias):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
    )


def run(db, plan):
    context = ExecutionContext(db.catalog, db.io, db.params)
    return execute_plan(plan, context).rows


class TestJoinProperties:
    @given(left=rows_strategy, right=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_all_join_methods_equal_nested_loops(self, left, right):
        db = build_db(left, right)
        expected = [
            a + b
            for a, b in itertools.product(left, right)
            if a[0] == b[0]
        ]
        for method in ("hj", "smj", "nlj"):
            plan = JoinNode(
                scan(db, "l", "a"),
                scan(db, "r", "b"),
                method=method,
                equi_keys=[(("a", "k"), ("b", "k"))],
            )
            assert rows_equal_bag(expected, run(db, plan)), method

    @given(left=rows_strategy, right=rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_join_commutative_up_to_column_order(self, left, right):
        db = build_db(left, right)
        forward = JoinNode(
            scan(db, "l", "a"),
            scan(db, "r", "b"),
            method="hj",
            equi_keys=[(("a", "k"), ("b", "k"))],
            projection=[("a", "v"), ("b", "w")],
        )
        backward = JoinNode(
            scan(db, "r", "b"),
            scan(db, "l", "a"),
            method="hj",
            equi_keys=[(("b", "k"), ("a", "k"))],
            projection=[("a", "v"), ("b", "w")],
        )
        assert rows_equal_bag(run(db, forward), run(db, backward))


class TestGroupByProperties:
    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_python_grouping(self, rows):
        db = build_db(rows, [])
        plan = GroupByNode(
            scan(db, "l", "a"),
            group_keys=[("a", "k")],
            aggregates=[
                ("s", AggregateCall("sum", col("a.v"))),
                ("n", AggregateCall("count", None)),
                ("mx", AggregateCall("max", col("a.v"))),
            ],
        )
        expected = {}
        for k, v in rows:
            entry = expected.setdefault(k, [0, 0, None])
            entry[0] += v
            entry[1] += 1
            entry[2] = v if entry[2] is None else max(entry[2], v)
        got = run(db, plan)
        assert rows_equal_bag(
            [(k, s, n, mx) for k, (s, n, mx) in expected.items()], got
        )

    @given(rows=rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_hash_and_sort_methods_agree(self, rows):
        db = build_db(rows, [])
        def make(method):
            return GroupByNode(
                scan(db, "l", "a"),
                group_keys=[("a", "k")],
                aggregates=[("s", AggregateCall("sum", col("a.v")))],
                method=method,
            )
        assert rows_equal_bag(run(db, make("hash")), run(db, make("sort")))

    @given(rows=rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_group_count_is_distinct_keys(self, rows):
        db = build_db(rows, [])
        plan = GroupByNode(
            scan(db, "l", "a"),
            group_keys=[("a", "k")],
            aggregates=[("n", AggregateCall("count", None))],
        )
        assert len(run(db, plan)) == len({k for k, _ in rows})


class TestSortProperties:
    @given(rows=rows_strategy)
    @settings(max_examples=25, deadline=None)
    def test_sort_is_permutation_and_ordered(self, rows):
        db = build_db(rows, [])
        plan = SortNode(scan(db, "l", "a"), [("a", "v"), ("a", "k")])
        got = run(db, plan)
        assert rows_equal_bag(rows, got)
        keys = [(row[1], row[0]) for row in got]
        assert keys == sorted(keys)
