"""Materialized views: DDL, catalog wiring, matching, and rewrite
adoption.

Maintenance (staleness, incremental refresh) lives in
``test_views_maintenance.py``; the rewrite-on/off corpus lives in
``test_views_differential.py``.
"""

import io
import random

import pytest

from repro import Database
from repro.algebra.query import QueryBlock
from repro.errors import CatalogError, SqlSyntaxError, UnsupportedFeatureError
from repro.optimizer.options import OptimizerOptions
from repro.sql.ddl import (
    CreateMaterializedViewStmt,
    DropIndexStmt,
    DropMaterializedViewStmt,
    DropTableStmt,
    RefreshMaterializedViewStmt,
    maybe_parse_ddl,
)
from repro.views.matcher import match_view
from repro.views.registry import backing_table_name


def make_emp_db(rows=200, dnos=8, seed=5):
    db = Database()
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    rng = random.Random(seed)
    db.insert(
        "emp",
        [
            (e, e % dnos, float(rng.randint(100, 999)), 20 + e % 40)
            for e in range(rows)
        ],
    )
    db.analyze()
    return db


def make_big_emp_db(rows=20_000, dnos=50, seed=7):
    """Large enough that scanning the backing table is strictly cheaper
    than re-aggregating the base table, so the rewrite is adopted."""
    return make_emp_db(rows=rows, dnos=dnos, seed=seed)


NO_REWRITE = OptimizerOptions(enable_view_rewrite=False)


class TestDdlParsing:
    def test_create_materialized_view(self):
        statement = maybe_parse_ddl(
            "create materialized view mv as "
            "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        assert isinstance(statement, CreateMaterializedViewStmt)
        assert statement.name == "mv"
        assert statement.body_sql.startswith("select e.dno")

    def test_create_materialized_view_case_and_newlines(self):
        statement = maybe_parse_ddl(
            "CREATE MATERIALIZED VIEW MV AS\n"
            "SELECT e.dno, COUNT(e.eno) AS n\nFROM emp e GROUP BY e.dno"
        )
        assert isinstance(statement, CreateMaterializedViewStmt)
        assert statement.name == "MV"
        assert "\n" in statement.body_sql

    def test_refresh(self):
        statement = maybe_parse_ddl("refresh materialized view mv")
        assert statement == RefreshMaterializedViewStmt(name="mv")

    def test_drop_materialized_view(self):
        statement = maybe_parse_ddl("drop materialized view mv")
        assert statement == DropMaterializedViewStmt(name="mv")

    def test_drop_table(self):
        assert maybe_parse_ddl("drop table emp") == DropTableStmt(name="emp")

    def test_drop_index(self):
        assert maybe_parse_ddl("drop index i") == DropIndexStmt(name="i")

    def test_malformed_create_materialized_rejected(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("create materialized view mv")

    def test_malformed_drop_rejected(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("drop view mv")

    def test_refresh_requires_materialized(self):
        with pytest.raises(SqlSyntaxError):
            maybe_parse_ddl("refresh view mv")


class TestCreation:
    def test_backing_table_registered(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e group by e.dno",
        )
        view = db.catalog.materialized_view("mv")
        backing = db.catalog.table(backing_table_name("mv"))
        assert view.deps == frozenset({"emp"})
        assert not view.stale
        assert backing.num_rows == 8
        assert [c.name for c in backing.columns][0] == "dno"

    def test_view_answers_by_name(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, avg(e.sal) as a from emp e group by e.dno",
        )
        rows = db.query("select m.dno, m.a from mv m").rows
        expected = db.query(
            "select e.dno, avg(e.sal) as a from emp e group by e.dno",
            options=NO_REWRITE,
        ).rows
        assert sorted(rows) == sorted(expected)

    def test_sql_statement_roundtrip(self):
        db = make_emp_db()
        assert db.execute(
            "create materialized view mv as "
            "select e.dno as dno, count(e.eno) as n from emp e "
            "group by e.dno"
        ) is None
        assert db.catalog.has_materialized_view("mv")
        assert db.execute("drop materialized view mv") is None
        assert not db.catalog.has_materialized_view("mv")
        assert not db.catalog.has_table(backing_table_name("mv"))

    def test_duplicate_name_rejected(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv", "select e.dno, sum(e.sal) from emp e group by e.dno"
        )
        with pytest.raises(CatalogError):
            db.create_materialized_view(
                "mv", "select e.dno, sum(e.sal) from emp e group by e.dno"
            )
        with pytest.raises(CatalogError):
            db.create_materialized_view(
                "emp", "select e.dno, sum(e.sal) from emp e group by e.dno"
            )

    def test_ungrouped_body_rejected(self):
        db = make_emp_db()
        with pytest.raises(UnsupportedFeatureError):
            db.create_materialized_view(
                "mv", "select e.eno, e.sal from emp e"
            )

    def test_holistic_view_stores_finished_values(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, median(e.sal) as m from emp e "
            "group by e.dno",
        )
        view = db.catalog.materialized_view("mv")
        assert not view.is_decomposable
        rows = db.query("select m.dno, m.m from mv m").rows
        expected = db.query(
            "select e.dno, median(e.sal) as m from emp e group by e.dno",
            options=NO_REWRITE,
        ).rows
        assert sorted(rows) == sorted(expected)


class TestDropStatements:
    def test_drop_table_via_sql(self):
        db = Database()
        db.execute("create table t (a int)")
        db.execute("drop table t")
        assert not db.catalog.has_table("t")

    def test_drop_index_via_sql(self):
        db = Database()
        db.execute("create table t (a int)")
        db.execute("create index t_a on t (a)")
        db.execute("drop index t_a")
        assert "t_a" not in db.catalog.info("t").indexes

    def test_drop_unknown_index(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.drop_index("nope")

    def test_drop_table_with_dependent_view_refused(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv", "select e.dno, sum(e.sal) from emp e group by e.dno"
        )
        with pytest.raises(CatalogError, match="mv"):
            db.drop_table("emp")
        db.drop_materialized_view("mv")
        db.drop_table("emp")
        assert not db.catalog.has_table("emp")


def _block_of(db, sql):
    """The bound query's single outer block, as the matcher sees it."""
    query = db.bind(sql)
    return QueryBlock(
        relations=query.base_tables,
        predicates=query.predicates,
        group_by=query.group_by,
        aggregates=query.aggregates,
        having=query.having,
        select=query.select,
    )


class TestMatching:
    def _view(self, db, body):
        db.create_materialized_view("mv", body)
        return db.catalog.materialized_view("mv")

    def test_same_shape_matches(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db, "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        match = match_view(block, view)
        assert match is not None
        assert match.exact_grouping

    def test_alias_change_matches(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select x.dno, sum(x.sal) as s from emp x group by x.dno",
        )
        assert match_view(block, view) is not None

    def test_residual_over_group_column_matches(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select e.dno, sum(e.sal) as s from emp e "
            "where e.dno < 4 group by e.dno",
        )
        match = match_view(block, view)
        assert match is not None
        assert len(match.residuals) == 1

    def test_predicate_over_aggregated_column_rejected(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select e.dno, sum(e.sal) as s from emp e "
            "where e.age > 30 group by e.dno",
        )
        assert match_view(block, view) is None

    def test_view_predicate_must_be_subsumed(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "where e.age > 30 group by e.dno",
        )
        block = _block_of(
            db, "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        assert match_view(block, view) is None
        subsumed = _block_of(
            db,
            "select e.dno, sum(e.sal) as s from emp e "
            "where 30 < e.age group by e.dno",
        )
        assert match_view(subsumed, view) is not None

    def test_missing_partial_rejected(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, min(e.sal) as lo from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db, "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        assert match_view(block, view) is None

    def test_count_partials_interchangeable(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, count(e.eno) as n from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select e.dno, count(e.age) as n from emp e group by e.dno",
        )
        assert match_view(block, view) is not None

    def test_coarser_grouping_rejected(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select e.dno, e.age, sum(e.sal) as s from emp e "
            "group by e.dno, e.age",
        )
        assert match_view(block, view) is None

    def test_finer_view_grouping_coalesces(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, e.age as age, sum(e.sal) as s "
            "from emp e group by e.dno, e.age",
        )
        block = _block_of(
            db, "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        match = match_view(block, view)
        assert match is not None
        assert not match.exact_grouping

    def test_holistic_view_never_matches(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, median(e.sal) as m from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select e.dno, median(e.sal) as m from emp e group by e.dno",
        )
        assert match_view(block, view) is None

    def test_holistic_query_never_matches(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select e.dno, median(e.sal) as m from emp e group by e.dno",
        )
        assert match_view(block, view) is None

    def test_stale_view_skipped(self):
        db = make_emp_db()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db, "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        assert match_view(block, view) is not None
        view.notify_insert("emp", [(999, 0, 100.0, 30)])
        assert view.stale
        assert match_view(block, view) is None

    def test_different_table_rejected(self):
        db = make_emp_db()
        db.create_table("dept", [("dno", "int"), ("budget", "float")])
        db.insert("dept", [(d, 100.0 * d) for d in range(8)])
        db.analyze()
        view = self._view(
            db,
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        block = _block_of(
            db,
            "select d.dno, sum(d.budget) as b from dept d group by d.dno",
        )
        assert match_view(block, view) is None


class TestAdoption:
    def test_counters_and_io(self):
        db = make_big_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, avg(e.sal) as a, count(e.eno) as n "
            "from emp e group by e.dno",
        )
        sql = "select e.dno, avg(e.sal) as a from emp e group by e.dno"
        rewritten = db.query(sql)
        stats = rewritten.optimization.stats
        assert stats.view_rewrites_considered >= 1
        assert stats.view_rewrites_adopted >= 1
        assert backing_table_name("mv") in rewritten.explain()
        baseline = db.query(sql, options=NO_REWRITE)
        assert baseline.optimization.stats.view_rewrites_adopted == 0
        assert backing_table_name("mv") not in baseline.explain()
        assert sorted(rewritten.rows) == sorted(baseline.rows)
        assert rewritten.executed_io.total < baseline.executed_io.total

    def test_greedy_optimizer_also_rewrites(self):
        db = make_big_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        sql = "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        for optimizer in ("traditional", "greedy", "full"):
            result = db.query(sql, optimizer=optimizer)
            assert backing_table_name("mv") in result.explain(), optimizer

    def test_rewrite_not_adopted_when_not_cheaper(self):
        # On a one-page base table the backing scan ties; strict
        # comparison keeps the base plan.
        db = make_emp_db(rows=30)
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        result = db.query(
            "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        stats = result.optimization.stats
        assert stats.view_rewrites_considered >= 1
        assert stats.view_rewrites_adopted == 0

    def test_stats_cli_surfacing(self):
        db = make_big_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(db, out=out, show_stats=True)
        shell.handle(
            "select e.dno, sum(e.sal) as s from emp e group by e.dno;"
        )
        text = out.getvalue()
        assert "view_rewrites_considered=" in text
        assert "view_rewrites_adopted=" in text


class TestShell:
    def test_dv_lists_views(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(db, out=out)
        shell.handle("\\dv")
        text = out.getvalue()
        assert "mv" in text and "fresh" in text

    def test_dv_empty(self):
        from repro.cli import Shell

        out = io.StringIO()
        Shell(Database(), out=out).handle("\\dv")
        assert "no materialized views" in out.getvalue()

    def test_d_marks_materialized(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        from repro.cli import Shell

        out = io.StringIO()
        Shell(db, out=out).handle("\\d")
        assert "materialized view mv" in out.getvalue()

    def test_no_view_rewrite_flag(self):
        db = make_big_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(db, out=out, view_rewrite=False)
        shell.handle(
            "\\explain select e.dno, sum(e.sal) as s from emp e "
            "group by e.dno"
        )
        assert backing_table_name("mv") not in out.getvalue()
