"""Sessions: statement dispatch, PREPARE/EXECUTE, and parameter lifting."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import Literal
from repro.errors import PlanError, ReproError, SqlSyntaxError
from repro.server.parameterize import parameterize_query
from repro.server.planrewrite import bind_parameters, plan_parameters
from repro.server.session import parse_execute_args


def rows_of(result):
    return sorted(tuple(row) for row in result.rows)


class TestDispatch:
    def test_query_matches_facade(self, emp_dept_db):
        sql = "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"
        direct = emp_dept_db.query(sql)
        with emp_dept_db.session() as session:
            served = session.execute(sql)
        assert served.kind == "query"
        assert served.columns == direct.columns
        assert rows_of(served) == sorted(tuple(r) for r in direct.rows)

    def test_ddl_and_insert(self, emp_dept_db):
        with emp_dept_db.session() as session:
            ddl = session.execute("CREATE TABLE scratch (a int, b int)")
            assert ddl.kind == "ddl"
            session.execute("INSERT INTO scratch VALUES (1, 2), (3, 4)")
            result = session.execute(
                "SELECT s.a, s.b FROM scratch s ORDER BY a"
            )
        assert [tuple(r) for r in result.rows] == [(1, 2), (3, 4)]

    def test_rowexec_engine(self, emp_dept_db):
        sql = "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"
        with emp_dept_db.session(engine="rowexec") as session:
            served = session.execute(sql)
        assert rows_of(served) == sorted(
            tuple(r) for r in emp_dept_db.query(sql).rows
        )

    def test_statement_counter(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute("SELECT e.eno FROM emp e")
            session.execute("SELECT e.eno FROM emp e")
            assert session.statements == 2


class TestPrepareExecute:
    def test_prepare_execute_roundtrip(self, emp_dept_db):
        with emp_dept_db.session() as session:
            prepared = session.execute(
                "PREPARE by_age AS SELECT dno, SUM(sal) AS s FROM emp "
                "WHERE age > $1 GROUP BY dno"
            )
            assert prepared.kind == "prepare"
            assert prepared.statement_name == "by_age"
            for threshold in (30, 45, 60):
                served = session.execute(f"EXECUTE by_age({threshold})")
                direct = emp_dept_db.query(
                    "SELECT dno, SUM(sal) AS s FROM emp "
                    f"WHERE age > {threshold} GROUP BY dno"
                )
                assert served.kind == "execute"
                assert rows_of(served) == sorted(
                    tuple(r) for r in direct.rows
                )
            assert session.prepared["by_age"].executions == 3
            assert session.prepared["by_age"].replans == 0

    def test_execute_is_plan_cache_fast_path(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(
                "PREPARE q AS SELECT e.eno FROM emp e WHERE e.age > $1"
            )
            served = session.execute("EXECUTE q(40)")
        assert served.cache_hit

    def test_string_and_null_arguments(self, emp_dept_db):
        emp_dept_db.execute("CREATE TABLE names (id int, label text null)")
        emp_dept_db.execute(
            "INSERT INTO names VALUES (1, 'ann'), (2, 'bob'), (3, NULL)"
        )
        with emp_dept_db.session() as session:
            session.execute(
                "PREPARE who AS SELECT n.id FROM names n "
                "WHERE n.label = $1"
            )
            assert [tuple(r) for r in session.execute(
                "EXECUTE who('ann')"
            ).rows] == [(1,)]
            # NULL never equals anything: empty, not an error.
            assert session.execute("EXECUTE who(null)").rows == []

    def test_deallocate(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(
                "PREPARE q AS SELECT e.eno FROM emp e WHERE e.age > $1"
            )
            gone = session.execute("DEALLOCATE q")
            assert gone.kind == "deallocate"
            with pytest.raises(ReproError, match="unknown prepared"):
                session.execute("EXECUTE q(1)")

    def test_duplicate_prepare_rejected(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(
                "PREPARE q AS SELECT e.eno FROM emp e WHERE e.age > $1"
            )
            with pytest.raises(ReproError, match="already exists"):
                session.execute(
                    "PREPARE q AS SELECT e.eno FROM emp e WHERE e.age > $1"
                )

    def test_wrong_arity_rejected(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(
                "PREPARE q AS SELECT e.eno FROM emp e WHERE e.age > $1"
            )
            with pytest.raises(PlanError, match="expects 1 values, got 2"):
                session.execute("EXECUTE q(1, 2)")

    def test_gap_in_parameter_numbers_rejected(self, emp_dept_db):
        with emp_dept_db.session() as session:
            with pytest.raises(PlanError, match="contiguously"):
                session.execute(
                    "PREPARE q AS SELECT e.eno FROM emp e "
                    "WHERE e.age > $2"
                )

    def test_raw_parameter_query_rejected(self, emp_dept_db):
        with emp_dept_db.session() as session:
            with pytest.raises(PlanError, match="PREPARE"):
                session.execute(
                    "SELECT e.eno FROM emp e WHERE e.age > $1"
                )

    def test_epoch_change_replans(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(
                "PREPARE cnt AS SELECT dno, COUNT(*) AS c FROM emp "
                "WHERE dno = $1 GROUP BY dno"
            )
            before = session.execute("EXECUTE cnt(1)")
            session.execute("INSERT INTO emp VALUES (950, 1, 10000.0, 20)")
            after = session.execute("EXECUTE cnt(1)")
        statement = session.prepared["cnt"]
        assert statement.replans == 1
        assert after.rows[0][1] == before.rows[0][1] + 1


class TestExecuteArgumentParsing:
    def test_scalar_kinds(self):
        values = parse_execute_args("1, -2.5, 'it''s', null, true, false")
        assert [v.value for v in values] == [
            1,
            -2.5,
            "it's",
            None,
            True,
            False,
        ]

    def test_comma_inside_string(self):
        values = parse_execute_args("'a,b', 2")
        assert [v.value for v in values] == ["a,b", 2]

    def test_empty_vector(self):
        assert parse_execute_args(None) == []
        assert parse_execute_args("   ") == []

    def test_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_execute_args("SELECT")
        with pytest.raises(SqlSyntaxError):
            parse_execute_args("'unterminated")


class TestParameterize:
    def test_lifts_outer_literals(self, emp_dept_db):
        bound = emp_dept_db.bind(
            "SELECT dno, SUM(sal) AS s FROM emp "
            "WHERE age > 30 AND dno < 5 GROUP BY dno HAVING SUM(sal) > 100"
        )
        lifted = parameterize_query(bound)
        assert lifted is not None
        query, values = lifted
        assert [v.value for v in values] == [30, 5, 100]
        # The lifted form has no literals left in WHERE/HAVING ...
        with emp_dept_db.session() as session:
            session.prepare_bound("p", query)
            assert session.prepared["p"].parameters == (1, 2, 3)
            served = session.execute_prepared("p", list(values))
        direct = emp_dept_db.query(
            "SELECT dno, SUM(sal) AS s FROM emp "
            "WHERE age > 30 AND dno < 5 GROUP BY dno HAVING SUM(sal) > 100"
        )
        assert sorted(tuple(r) for r in served.rows) == sorted(
            tuple(r) for r in direct.rows
        )

    def test_no_literals_returns_none(self, emp_dept_db):
        bound = emp_dept_db.bind(
            "SELECT e.eno FROM emp e, dept d WHERE e.dno = d.dno"
        )
        assert parameterize_query(bound) is None

    def test_view_body_literals_stay(self, emp_dept_db):
        # Literals inside an aggregate-view block are definitional and
        # must not lift; only the outer predicate's literal does.
        emp_dept_db.create_view(
            "dsal",
            ["dno", "s"],
            "SELECT e.dno, SUM(e.sal) FROM emp e "
            "WHERE e.age > 25 GROUP BY e.dno",
        )
        bound = emp_dept_db.bind(
            "SELECT v.dno, v.s FROM dsal v WHERE v.s > 1000"
        )
        lifted = parameterize_query(bound)
        assert lifted is not None
        query, values = lifted
        assert [v.value for v in values] == [1000]
        inner = query.views[0].block
        assert any(
            isinstance(e, Literal)
            for p in inner.predicates
            for e in _walk(p)
        )

    def test_plan_substitution_validates(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(
                "PREPARE q AS SELECT e.eno FROM emp e WHERE e.age > $1"
            )
            plan = session.prepared["q"].optimization.plan
        assert plan_parameters(plan) == {1}
        with pytest.raises(PlanError, match="missing values"):
            bind_parameters(plan, {})
        bound_plan = bind_parameters(plan, {1: Literal(40)})
        assert plan_parameters(bound_plan) == set()


def _walk(expression):
    from repro.algebra.expressions import expression_children

    yield expression
    for child in expression_children(expression):
        yield from _walk(child)
