"""Plan cache: signatures, LRU/epoch behavior, and session integration."""

from __future__ import annotations

import pytest

from repro import Database
from repro.optimizer.options import OptimizerOptions
from repro.server.plancache import PlanCache
from repro.server.signature import cache_key, query_signature


class TestPlanCacheUnit:
    def test_put_get_and_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k1", epoch=0) is None
        cache.put("k1", epoch=0, value="plan1")
        assert cache.get("k1", epoch=0) == "plan1"
        stats = cache.as_dict()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["capacity"] == 4

    def test_epoch_mismatch_invalidates(self):
        cache = PlanCache(capacity=4)
        cache.put("k1", epoch=3, value="plan1")
        assert cache.get("k1", epoch=4) is None
        stats = cache.as_dict()
        assert stats["invalidations"] == 1
        assert stats["entries"] == 0
        # The stale entry is gone, not resurrected at the old epoch.
        assert cache.get("k1", epoch=3) is None

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 0, "A")
        cache.put("b", 0, "B")
        assert cache.get("a", 0) == "A"  # refresh a: b is now LRU
        cache.put("c", 0, "C")
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == "A"
        assert cache.get("c", 0) == "C"
        assert cache.as_dict()["evictions"] == 1

    def test_clear(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 0, "A")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a", 0) is None


class TestSignatures:
    def _bind(self, db, sql):
        return db.bind(sql)

    def test_same_sql_same_key(self, emp_dept_db):
        sql = "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"
        k1 = cache_key(self._bind(emp_dept_db, sql), "full", None)
        k2 = cache_key(self._bind(emp_dept_db, sql), "full", None)
        assert k1 == k2

    def test_whitespace_insensitive(self, emp_dept_db):
        a = self._bind(
            emp_dept_db, "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"
        )
        b = self._bind(
            emp_dept_db,
            "select dno,  SUM( sal ) as s\nfrom emp group by dno",
        )
        assert query_signature(a) == query_signature(b)

    def test_literal_changes_key(self, emp_dept_db):
        a = self._bind(
            emp_dept_db,
            "SELECT dno, SUM(sal) AS s FROM emp "
            "WHERE age > 30 GROUP BY dno",
        )
        b = self._bind(
            emp_dept_db,
            "SELECT dno, SUM(sal) AS s FROM emp "
            "WHERE age > 40 GROUP BY dno",
        )
        assert query_signature(a) != query_signature(b)

    def test_alias_is_part_of_signature(self, emp_dept_db):
        # Aliases shape the output schema, so they must not normalize
        # away — a cached plan for alias `e` would render wrong column
        # headers for alias `x`.
        a = self._bind(emp_dept_db, "SELECT e.eno FROM emp e")
        b = self._bind(emp_dept_db, "SELECT x.eno FROM emp x")
        assert query_signature(a) != query_signature(b)

    def test_optimizer_and_options_in_key(self, emp_dept_db):
        bound = self._bind(emp_dept_db, "SELECT e.eno FROM emp e")
        assert cache_key(bound, "full", None) != cache_key(
            bound, "traditional", None
        )
        assert cache_key(bound, "full", None) != cache_key(
            bound, "full", OptimizerOptions(enable_view_rewrite=False)
        )


class TestSessionCaching:
    SQL = "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"

    def test_repeat_query_hits(self, emp_dept_db):
        with emp_dept_db.session() as session:
            first = session.execute(self.SQL)
            second = session.execute(self.SQL)
        assert not first.cache_hit
        assert second.cache_hit
        assert sorted(first.rows) == sorted(second.rows)
        stats = emp_dept_db.plan_cache.as_dict()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_hit_skips_reoptimization(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(self.SQL)
            first = session.execute(self.SQL)
            # A hit returns the cached OptimizationResult object itself.
            second = session.execute(self.SQL)
        assert (
            first.query_result.optimization
            is second.query_result.optimization
        )

    def test_insert_invalidates(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(self.SQL)
            session.execute("INSERT INTO emp VALUES (900, 1, 50000.0, 33)")
            third = session.execute(self.SQL)
        assert not third.cache_hit
        assert emp_dept_db.plan_cache.as_dict()["invalidations"] == 1

    def test_analyze_invalidates(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(self.SQL)
            before = emp_dept_db.catalog.change_epoch
            emp_dept_db.analyze()
            assert emp_dept_db.catalog.change_epoch > before
            result = session.execute(self.SQL)
        assert not result.cache_hit

    def test_ddl_invalidates(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(self.SQL)
            session.execute("CREATE INDEX emp_age_idx ON emp (age)")
            result = session.execute(self.SQL)
        assert not result.cache_hit

    def test_matview_refresh_invalidates(self, emp_dept_db):
        emp_dept_db.execute(
            "CREATE MATERIALIZED VIEW dsum AS "
            "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"
        )
        with emp_dept_db.session() as session:
            # First query lazily refreshes and caches at the settled
            # epoch; the immediate re-run must still hit.
            session.execute("SELECT dno, s FROM dsum")
            assert session.execute("SELECT dno, s FROM dsum").cache_hit
            # Staleness + explicit refresh both move the epoch.
            emp_dept_db.execute("INSERT INTO emp VALUES (901, 2, 60000.0, 41)")
            epoch = emp_dept_db.catalog.change_epoch
            emp_dept_db.execute("REFRESH MATERIALIZED VIEW dsum")
            assert emp_dept_db.catalog.change_epoch > epoch
            result = session.execute("SELECT dno, s FROM dsum")
        assert not result.cache_hit

    def test_noop_refresh_keeps_cache(self, emp_dept_db):
        # Refreshing a fresh view changes nothing, so cached plans
        # stay valid — the epoch must NOT move.
        emp_dept_db.execute(
            "CREATE MATERIALIZED VIEW dsum2 AS "
            "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"
        )
        with emp_dept_db.session() as session:
            session.execute("SELECT dno, s FROM dsum2")
            emp_dept_db.execute("REFRESH MATERIALIZED VIEW dsum2")
            result = session.execute("SELECT dno, s FROM dsum2")
        assert result.cache_hit

    def test_cache_disabled(self, emp_dept_db):
        with emp_dept_db.session(use_plan_cache=False) as session:
            session.execute(self.SQL)
            second = session.execute(self.SQL)
        assert not second.cache_hit
        assert len(emp_dept_db.plan_cache) == 0

    def test_sessions_share_cache(self, emp_dept_db):
        with emp_dept_db.session() as one:
            one.execute(self.SQL)
        with emp_dept_db.session() as two:
            result = two.execute(self.SQL)
        assert result.cache_hit

    def test_different_options_miss(self, emp_dept_db):
        with emp_dept_db.session() as session:
            session.execute(self.SQL)
        with emp_dept_db.session(optimizer="traditional") as other:
            result = other.execute(self.SQL)
        assert not result.cache_hit

    def test_cached_plan_is_cloned_per_execution(self, emp_dept_db):
        with emp_dept_db.session() as session:
            first = session.execute(self.SQL)
            second = session.execute(self.SQL)
        cached = first.query_result.optimization.plan
        assert first.query_result.plan is not cached
        assert second.query_result.plan is not cached
        assert first.query_result.plan is not second.query_result.plan

    def test_stats_panel_fields(self, emp_dept_db):
        stats = emp_dept_db.plan_cache.as_dict()
        for field in (
            "entries",
            "capacity",
            "hits",
            "misses",
            "invalidations",
            "evictions",
        ):
            assert field in stats

    def test_session_counts(self):
        db = Database()
        db.create_table("t", [("a", "int")])
        assert db.active_sessions == 0
        with db.session() as session:
            assert db.active_sessions == 1
            assert db.sessions_opened == 1
            session.execute("SELECT t.a FROM t t")
        assert db.active_sessions == 0
        with db.session():
            pass
        assert db.sessions_opened == 2


class TestSubqueryJoinSignatures:
    """The signature must cover join-unit kinds and subquery structure:
    queries that differ only there can never share a cached plan."""

    def test_in_vs_not_in_distinct(self, emp_dept_db):
        a = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE e.dno IN "
            "(SELECT d.dno FROM dept d)"
        )
        b = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE e.dno NOT IN "
            "(SELECT d.dno FROM dept d)"
        )
        assert query_signature(a) != query_signature(b)

    def test_exists_vs_not_exists_distinct(self, emp_dept_db):
        a = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE EXISTS "
            "(SELECT 1 FROM dept d WHERE d.dno = e.dno)"
        )
        b = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE NOT EXISTS "
            "(SELECT 1 FROM dept d WHERE d.dno = e.dno)"
        )
        assert query_signature(a) != query_signature(b)

    def test_left_vs_inner_join_distinct(self, emp_dept_db):
        a = emp_dept_db.bind(
            "SELECT e.eno FROM emp e LEFT JOIN dept d ON e.dno = d.dno"
        )
        b = emp_dept_db.bind(
            "SELECT e.eno FROM emp e INNER JOIN dept d ON e.dno = d.dno"
        )
        assert query_signature(a) != query_signature(b)

    def test_subquery_aggregate_changes_key(self, emp_dept_db):
        a = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE e.sal > "
            "(SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e.dno)"
        )
        b = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE e.sal > "
            "(SELECT MAX(e2.sal) FROM emp e2 WHERE e2.dno = e.dno)"
        )
        assert query_signature(a) != query_signature(b)

    def test_correlation_changes_key(self, emp_dept_db):
        a = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE e.sal > "
            "(SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e.dno)"
        )
        b = emp_dept_db.bind(
            "SELECT e.eno FROM emp e WHERE e.sal > "
            "(SELECT AVG(e2.sal) FROM emp e2)"
        )
        assert query_signature(a) != query_signature(b)


class TestSubqueryPlanCaching:
    """Cached plans with the new node shapes must survive the per-
    execution clone (kind / null_aware / SubqueryMarkNode fields)."""

    def _roundtrip(self, db, sql):
        expected = db.reference(sql).rows
        with db.session() as session:
            first = session.execute(sql)
            second = session.execute(sql)
        assert not first.cache_hit
        assert second.cache_hit
        assert sorted(first.rows) == sorted(expected)
        assert sorted(second.rows) == sorted(expected)

    def test_semi_join_roundtrip(self, emp_dept_db):
        self._roundtrip(
            emp_dept_db,
            "SELECT e.eno FROM emp e WHERE e.dno IN "
            "(SELECT d.dno FROM dept d WHERE d.budget > 5300)",
        )

    def test_null_aware_anti_roundtrip(self, emp_dept_db):
        self._roundtrip(
            emp_dept_db,
            "SELECT e.eno FROM emp e WHERE e.dno NOT IN "
            "(SELECT d.dno FROM dept d WHERE d.budget > 5300)",
        )

    def test_left_join_roundtrip(self, emp_dept_db):
        self._roundtrip(
            emp_dept_db,
            "SELECT e.eno, d.budget FROM emp e "
            "LEFT JOIN dept d ON e.dno = d.dno AND d.budget > 5600",
        )

    def test_mark_join_roundtrip(self, emp_dept_db):
        # uncorrelated scalar subqueries stay as mark joins
        self._roundtrip(
            emp_dept_db,
            "SELECT e.eno FROM emp e WHERE e.sal > "
            "(SELECT AVG(e2.sal) FROM emp e2)",
        )
