"""Golden plan-shape tests for the paper's canonical situations.

These assert the *structure* the optimizer should produce in each
regime — the executable version of the paper's Figures 1/2/4 — so a
regression in the search space shows up as a changed shape, not just a
changed number.
"""

import pytest

from repro import CostParams, Database, OptimizerOptions
from repro.algebra.plan import (
    GroupByNode,
    JoinNode,
    ScanNode,
    plan_nodes,
)
from repro.workloads import EmpDeptConfig, build_empdept


def nodes_of(plan, node_type):
    return [node for node in plan_nodes(plan) if isinstance(node, node_type)]


@pytest.fixture(scope="module")
def crossover_db():
    return build_empdept(
        EmpDeptConfig(
            employees=8000,
            departments=4000,
            uniform_ages=True,
            memory_pages=8,
            with_indexes=False,
        )
    )


EXAMPLE1 = """
with a1(dno, asal) as (select e2.dno, avg(e2.sal) from emp e2 group by e2.dno)
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < {threshold} and e1.sal > b.asal
"""


class TestPulledUpShape:
    """Selective regime: the paper's plan P2 / query B shape."""

    def plan(self, crossover_db):
        return crossover_db.query(
            EXAMPLE1.format(threshold=19), optimizer="full", execute=False
        ).plan

    def test_group_by_above_join(self, crossover_db):
        plan = self.plan(crossover_db)
        groups = nodes_of(plan, GroupByNode)
        assert len(groups) == 1
        assert isinstance(groups[0].child, JoinNode)

    def test_having_carries_deferred_predicate(self, crossover_db):
        plan = self.plan(crossover_db)
        group = nodes_of(plan, GroupByNode)[0]
        assert group.having  # e1.sal > asal deferred per Definition 1

    def test_grouping_includes_partner_key(self, crossover_db):
        plan = self.plan(crossover_db)
        group = nodes_of(plan, GroupByNode)[0]
        assert ("e1", "eno") in group.group_keys

    def test_join_is_between_base_scans(self, crossover_db):
        plan = self.plan(crossover_db)
        join = nodes_of(plan, JoinNode)[0]
        assert isinstance(join.left, ScanNode)
        assert isinstance(join.right, ScanNode)

    def test_filter_pushed_to_scan(self, crossover_db):
        plan = self.plan(crossover_db)
        scans = nodes_of(plan, ScanNode)
        assert any(scan.filters for scan in scans)


class TestTraditionalShape:
    """Unselective regime: the view is evaluated locally (plan P1)."""

    def plan(self, crossover_db):
        return crossover_db.query(
            EXAMPLE1.format(threshold=55), optimizer="full", execute=False
        ).plan

    def test_group_by_below_join(self, crossover_db):
        plan = self.plan(crossover_db)
        join = nodes_of(plan, JoinNode)[0]
        # the view result feeds the join: a GroupBy lives under it
        group_descendants = [
            node
            for node in plan_nodes(join)
            if isinstance(node, GroupByNode)
        ]
        assert group_descendants

    def test_join_predicate_on_aggregate_stays_residual(self, crossover_db):
        plan = self.plan(crossover_db)
        join = nodes_of(plan, JoinNode)[0]
        assert any(
            "asal" in predicate.display() for predicate in join.residuals
        )


class TestEarlyAggregationShape:
    def test_partial_then_coalesce(self):
        db = Database(CostParams(memory_pages=4))
        db.create_table(
            "sales", [("sid", "int"), ("dno", "int"), ("amt", "float")],
            primary_key=["sid"],
        )
        db.create_table(
            "details", [("rid", "int"), ("dno", "int"), ("x", "float"),
                        ("y", "float")],
            primary_key=["rid"],
        )
        db.insert(
            "sales", [(i, i % 10, float(i % 97)) for i in range(3000)]
        )
        db.insert(
            "details", [(i, i % 10, float(i), float(i)) for i in range(3000)]
        )
        db.analyze()
        plan = db.query(
            "select s.dno, sum(s.amt) as t from sales s, details d "
            "where s.dno = d.dno group by s.dno",
            optimizer="greedy",
            execute=False,
        ).plan
        groups = nodes_of(plan, GroupByNode)
        assert len(groups) == 2  # partial below the join, coalesce above
        join = nodes_of(plan, JoinNode)[0]
        below_join = [
            node for node in plan_nodes(join)
            if isinstance(node, GroupByNode)
        ]
        assert len(below_join) == 1
        # the partial aggregates use generated names, coalesced above
        partial = below_join[0]
        assert all(name.startswith("__p") for name, _ in partial.aggregates)


class TestIndexShape:
    def test_inlj_after_pullup(self):
        import random

        db = Database(CostParams(memory_pages=8))
        db.create_table(
            "emp", [("eno", "int"), ("dno", "int"), ("sal", "float")],
            primary_key=["eno"],
        )
        db.create_table(
            "watch", [("wid", "int"), ("dno", "int")], primary_key=["wid"]
        )
        rng = random.Random(4)
        db.insert(
            "emp",
            [(i, i % 3000, float(rng.randint(1, 99))) for i in range(30000)],
        )
        db.insert("watch", [(w, rng.randrange(3000)) for w in range(8)])
        db.create_index("emp_dno_idx", "emp", ["dno"])
        db.analyze()
        plan = db.query(
            "with v(dno, a) as (select e.dno, avg(e.sal) from emp e "
            "group by e.dno) "
            "select w.wid, v.a from watch w, v where w.dno = v.dno",
            optimizer="full",
            execute=False,
        ).plan
        joins = nodes_of(plan, JoinNode)
        assert any(join.method == "inlj" for join in joins)
