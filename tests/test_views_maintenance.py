"""Incremental maintenance: staleness tracking, delta merging, and the
full-recompute fallback.

The load-bearing property is byte-identity: after inserts, an
incremental refresh (partials over the delta, merged into the stored
groups through the accumulators' ``merge()``) must leave the backing
table exactly as a from-scratch refresh would — same rows, same order,
same value representations.
"""

import random

import pytest

from repro import Database
from repro.errors import CatalogError
from repro.views.registry import backing_table_name

DECOMPOSABLE = ["sum", "count", "avg", "min", "max", "stddev"]


def make_emp_db(rows=150, dnos=6, seed=11):
    db = Database()
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    rng = random.Random(seed)
    db.insert(
        "emp",
        [
            (e, e % dnos, float(rng.randint(100, 999)), 20 + e % 40)
            for e in range(rows)
        ],
    )
    db.analyze()
    return db


def delta_rows(start, count, dnos=6, seed=77):
    rng = random.Random(seed + start)
    return [
        (e, rng.randrange(dnos + 2), float(rng.randint(100, 999)),
         20 + e % 40)
        for e in range(start, start + count)
    ]


def backing_rows(db, name):
    return list(db.catalog.table(backing_table_name(name)).rows)


class TestStaleness:
    def test_insert_marks_stale(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        view = db.catalog.materialized_view("mv")
        assert not view.stale
        db.insert("emp", delta_rows(1000, 3))
        assert view.stale
        assert sum(len(rows) for rows in view.deltas.values()) == 3

    def test_insert_into_unrelated_table_keeps_fresh(self):
        db = make_emp_db()
        db.create_table("other", [("a", "int")])
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        db.insert("other", [(1,)])
        assert not db.catalog.materialized_view("mv").stale

    def test_refresh_noop_when_fresh(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        report = db.refresh_materialized_view("mv")
        assert report.mode == "noop"

    def test_refresh_unknown_view(self):
        db = make_emp_db()
        with pytest.raises(CatalogError):
            db.refresh_materialized_view("nope")


class TestIncrementalByteIdentity:
    @pytest.mark.parametrize("func", DECOMPOSABLE)
    def test_incremental_equals_full(self, func):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            f"select e.dno as dno, {func}(e.sal) as v from emp e "
            "group by e.dno",
        )
        db.insert("emp", delta_rows(1000, 25))
        report = db.refresh_materialized_view("mv")
        assert report.mode == "incremental"
        incremental = backing_rows(db, "mv")
        # Force a from-scratch recompute of the same state.
        full = db.refresh_materialized_view("mv", mode="full")
        assert full.mode == "full"
        assert incremental == backing_rows(db, "mv")
        assert [tuple(map(type, row)) for row in incremental] == [
            tuple(map(type, row))
            for row in backing_rows(db, "mv")
        ]

    def test_multi_aggregate_view(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s, count(e.eno) as n, "
            "avg(e.sal) as a, min(e.sal) as lo, max(e.sal) as hi, "
            "stddev(e.sal) as sd from emp e group by e.dno",
        )
        db.insert("emp", delta_rows(1000, 40))
        assert db.refresh_materialized_view("mv").mode == "incremental"
        incremental = backing_rows(db, "mv")
        db.refresh_materialized_view("mv", mode="full")
        assert incremental == backing_rows(db, "mv")

    def test_new_groups_appear_in_order(self):
        db = make_emp_db(dnos=3)
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, count(e.eno) as n from emp e "
            "group by e.dno",
        )
        before = backing_rows(db, "mv")
        db.insert("emp", [(2000, 99, 500.0, 30), (2001, -1, 400.0, 40)])
        db.refresh_materialized_view("mv")
        after = backing_rows(db, "mv")
        assert len(after) == len(before) + 2
        assert after == sorted(after, key=lambda row: row[0])

    def test_successive_deltas(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, avg(e.sal) as a from emp e "
            "group by e.dno",
        )
        for wave in range(3):
            db.insert("emp", delta_rows(1000 + 10 * wave, 10))
            assert db.refresh_materialized_view("mv").mode == "incremental"
        incremental = backing_rows(db, "mv")
        db.refresh_materialized_view("mv", mode="full")
        assert incremental == backing_rows(db, "mv")


class TestFullFallback:
    def test_holistic_falls_back_to_full(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, median(e.sal) as m from emp e "
            "group by e.dno",
        )
        db.insert("emp", delta_rows(1000, 10))
        report = db.refresh_materialized_view("mv")
        assert report.mode == "full"
        assert not db.catalog.materialized_view("mv").stale

    def test_self_join_falls_back_to_full(self):
        db = make_emp_db(rows=40)
        db.create_materialized_view(
            "mv",
            "select a.dno as dno, count(a.eno) as n from emp a, emp b "
            "where a.dno = b.dno group by a.dno",
        )
        db.insert("emp", delta_rows(1000, 5))
        assert db.refresh_materialized_view("mv").mode == "full"

    def test_join_view_single_table_delta_is_incremental(self):
        db = make_emp_db()
        db.create_table(
            "dept", [("dno", "int"), ("budget", "float")],
            primary_key=["dno"],
        )
        db.insert("dept", [(d, 1000.0 * (d + 1)) for d in range(10)])
        db.analyze()
        db.create_materialized_view(
            "mv",
            "select d.budget as budget, sum(e.sal) as s "
            "from emp e, dept d where e.dno = d.dno group by d.budget",
        )
        db.insert("emp", delta_rows(1000, 15))
        assert db.refresh_materialized_view("mv").mode == "incremental"
        incremental = backing_rows(db, "mv")
        db.refresh_materialized_view("mv", mode="full")
        assert incremental == backing_rows(db, "mv")

    def test_join_view_both_tables_changed_falls_back(self):
        db = make_emp_db()
        db.create_table(
            "dept", [("dno", "int"), ("budget", "float")],
            primary_key=["dno"],
        )
        db.insert("dept", [(d, 1000.0 * (d + 1)) for d in range(10)])
        db.analyze()
        db.create_materialized_view(
            "mv",
            "select d.budget as budget, sum(e.sal) as s "
            "from emp e, dept d where e.dno = d.dno group by d.budget",
        )
        db.insert("emp", delta_rows(1000, 5))
        db.insert("dept", [(20, 500.0)])
        assert db.refresh_materialized_view("mv").mode == "full"


class TestRefreshPlumbing:
    def test_refresh_is_metered(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        db.insert("emp", delta_rows(1000, 10))
        report = db.refresh_materialized_view("mv")
        assert report.io is not None and report.io.total > 0
        assert report.metrics is not None and report.metrics.operators
        assert report.delta_rows == 10
        assert "incremental" in report.describe()

    def test_refresh_via_sql(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        db.execute("insert into emp values (1000, 0, 555.0, 33)")
        assert db.catalog.materialized_view("mv").stale
        db.execute("refresh materialized view mv")
        assert not db.catalog.materialized_view("mv").stale

    def test_lazy_refresh_on_read(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        db.insert("emp", delta_rows(1000, 10))
        view = db.catalog.materialized_view("mv")
        assert view.stale
        rows = db.query("select m.dno, m.s from mv m").rows
        assert not view.stale
        from repro.optimizer.options import OptimizerOptions

        expected = db.query(
            "select e.dno, sum(e.sal) as s from emp e group by e.dno",
            options=OptimizerOptions(enable_view_rewrite=False),
        ).rows
        assert sorted(rows) == sorted(expected)

    def test_delta_temp_table_cleaned_up(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        db.insert("emp", delta_rows(1000, 10))
        db.refresh_materialized_view("mv")
        assert not any(
            name.startswith("__delta__")
            for name in db.catalog.table_names()
        )

    def test_refresh_results_visible_to_rewrite(self):
        db = make_emp_db()
        db.create_materialized_view(
            "mv",
            "select e.dno as dno, sum(e.sal) as s from emp e "
            "group by e.dno",
        )
        from repro.optimizer.options import OptimizerOptions

        off = OptimizerOptions(enable_view_rewrite=False)
        sql = "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        db.insert("emp", delta_rows(1000, 20))
        assert sorted(db.query(sql).rows) == sorted(
            db.query(sql, options=off).rows
        )
