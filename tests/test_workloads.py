"""Tests for the workload generators."""

import pytest

from repro.engine.reference import evaluate_canonical
from repro.workloads import (
    EmpDeptConfig,
    RandomQueryConfig,
    TpcdConfig,
    build_empdept,
    build_tpcd_like,
    random_queries,
)
from repro.workloads.empdept import (
    EXAMPLE1_NESTED_SQL,
    EXAMPLE1_SQL,
    EXAMPLE2_SQL,
)
from repro.workloads.tpcdlike import (
    BIG_SPENDERS_SQL,
    REVENUE_PER_CUSTOMER_SQL,
    SUPPLIER_SHARE_SQL,
)


class TestEmpDept:
    def test_sizes(self):
        db = build_empdept(EmpDeptConfig(employees=500, departments=20))
        assert db.catalog.table("emp").num_rows == 500
        assert db.catalog.table("dept").num_rows == 20

    def test_young_fraction_controls_skew(self):
        few = build_empdept(
            EmpDeptConfig(employees=2000, young_fraction=0.05)
        )
        many = build_empdept(
            EmpDeptConfig(employees=2000, young_fraction=0.6)
        )
        def young_count(db):
            emp = db.catalog.table("emp")
            position = emp.column_position("age")
            return sum(1 for row in emp.rows if row[position] < 22)
        assert young_count(few) < young_count(many)

    def test_uniform_ages(self):
        db = build_empdept(EmpDeptConfig(employees=3000, uniform_ages=True))
        emp = db.catalog.table("emp")
        position = emp.column_position("age")
        young = sum(1 for row in emp.rows if row[position] < 22)
        # 4/48 of the uniform range, loosely
        assert 0.03 < young / emp.num_rows < 0.15

    def test_determinism(self):
        first = build_empdept(EmpDeptConfig(seed=9))
        second = build_empdept(EmpDeptConfig(seed=9))
        assert first.catalog.table("emp").rows == second.catalog.table(
            "emp"
        ).rows

    def test_foreign_key_declared(self):
        db = build_empdept(EmpDeptConfig())
        assert db.catalog.foreign_keys("emp")

    @pytest.mark.parametrize(
        "sql", [EXAMPLE1_SQL, EXAMPLE1_NESTED_SQL, EXAMPLE2_SQL]
    )
    def test_example_queries_run(self, sql):
        db = build_empdept(EmpDeptConfig(employees=300, departments=10))
        result = db.query(sql)
        assert result.estimated_cost > 0

    def test_example1_forms_agree(self):
        db = build_empdept(EmpDeptConfig(employees=300, departments=10))
        view_form = db.query(EXAMPLE1_SQL)
        nested_form = db.query(EXAMPLE1_NESTED_SQL)
        assert sorted(view_form.rows) == sorted(nested_form.rows)


class TestTpcdLike:
    def test_sizes_and_keys(self):
        db = build_tpcd_like(TpcdConfig(orders=200, customers=30))
        assert db.catalog.table("orders").num_rows == 200
        assert db.catalog.primary_key("lineitem") == (
            "orderkey",
            "linenumber",
        )

    def test_lineitems_reference_orders(self):
        db = build_tpcd_like(TpcdConfig(orders=100))
        lineitem = db.catalog.table("lineitem")
        position = lineitem.column_position("orderkey")
        assert all(0 <= row[position] < 100 for row in lineitem.rows)

    def test_totalprice_consistent_with_lines(self):
        db = build_tpcd_like(TpcdConfig(orders=50))
        result = db.query(
            "with rev(orderkey, r) as (select l.orderkey, "
            "sum(l.price * (1 - l.discount)) from lineitem l "
            "group by l.orderkey) "
            "select o.totalprice, v.r from orders o, rev v "
            "where o.orderkey = v.orderkey"
        )
        assert result.rows
        for total, revenue in result.rows:
            assert total == pytest.approx(revenue)

    @pytest.mark.parametrize(
        "sql",
        [REVENUE_PER_CUSTOMER_SQL, BIG_SPENDERS_SQL, SUPPLIER_SHARE_SQL],
    )
    def test_workload_queries_consistent_across_optimizers(self, sql):
        db = build_tpcd_like(TpcdConfig(orders=300, customers=50))
        traditional = db.query(sql, optimizer="traditional")
        full = db.query(sql, optimizer="full")
        assert sorted(map(repr, traditional.rows)) == sorted(
            map(repr, full.rows)
        )


class TestRandomQueries:
    def test_reproducible(self):
        _, first = random_queries(RandomQueryConfig(seed=5, queries=5))
        _, second = random_queries(RandomQueryConfig(seed=5, queries=5))
        for a, b in zip(first, second):
            assert a.select == b.select
            assert a.predicates == b.predicates

    def test_different_seeds_differ(self):
        _, first = random_queries(RandomQueryConfig(seed=5, queries=8))
        _, second = random_queries(RandomQueryConfig(seed=6, queries=8))
        assert any(
            a.predicates != b.predicates for a, b in zip(first, second)
        )

    def test_all_queries_evaluable(self):
        db, queries = random_queries(
            RandomQueryConfig(seed=1, queries=10, fact_rows=80, dim_rows=10)
        )
        for query in queries:
            evaluate_canonical(query, db.catalog)  # must not raise

    def test_views_always_grouped(self):
        _, queries = random_queries(RandomQueryConfig(seed=2, queries=10))
        for query in queries:
            for view in query.views:
                assert view.block.is_grouped

    def test_view_count_bounded(self):
        _, queries = random_queries(
            RandomQueryConfig(seed=3, queries=10, max_views=2)
        )
        assert all(len(query.views) <= 2 for query in queries)
