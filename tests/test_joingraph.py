"""Parity tests for the bitset join graph and its DP enumerator.

Two layers of guarantee:

1. :class:`JoinGraph.connected_subsets` visits *exactly* the connected
   subsets of size ≥ 2, cross-checked against a brute-force walk of all
   2ⁿ subsets on randomized chain/star/clique/disconnected workloads.
2. The :class:`BlockOptimizer` with graph enumeration chooses plans of
   identical cost *and operator shape* as the exhaustive reference
   enumerator (the seed search space), in both greedy and traditional
   modes. The workloads use selective equijoins (large key domain) so
   connected join orders strictly dominate cross products and the
   comparison is free of equal-cost ties.
"""

import pytest

from repro.algebra.plan import explain
from repro.optimizer.block import BaseLeaf, BlockOptimizer, GroupingSpec
from repro.optimizer.joingraph import JoinGraph
from repro.workloads import JoinWorkloadConfig, build_join_workload

TOPOLOGIES = ("chain", "star", "clique", "disconnected")


def _graph_of(workload):
    return JoinGraph(
        (ref.alias for ref in workload.relations), workload.predicates
    )


def _brute_force_connected(graph):
    """All connected subsets of size ≥ 2, found the slow, obvious way."""
    found = set()
    for mask in range(1, graph.all_mask + 1):
        if mask.bit_count() >= 2 and graph.is_connected(mask):
            found.add(mask)
    return found


class TestConnectedSubsetEnumeration:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_visits_exactly_the_connected_subsets(self, topology, seed):
        workload = build_join_workload(
            JoinWorkloadConfig(topology=topology, leaves=6, seed=seed)
        )
        graph = _graph_of(workload)
        enumerated = list(graph.connected_subsets())
        assert len(enumerated) == len(set(enumerated)), "duplicates"
        assert set(enumerated) == _brute_force_connected(graph)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_sizes_ascend(self, topology):
        workload = build_join_workload(
            JoinWorkloadConfig(topology=topology, leaves=6, seed=0)
        )
        graph = _graph_of(workload)
        sizes = [mask.bit_count() for mask in graph.connected_subsets()]
        assert sizes == sorted(sizes)

    def test_chain_counts_are_quadratic(self):
        # An n-leaf chain has n(n-1)/2 connected subsets of size >= 2.
        workload = build_join_workload(
            JoinWorkloadConfig(topology="chain", leaves=7, seed=0)
        )
        graph = _graph_of(workload)
        assert graph.connected_subset_count() == 7 * 6 // 2

    def test_disconnected_graph_has_two_components(self):
        workload = build_join_workload(
            JoinWorkloadConfig(topology="disconnected", leaves=6, seed=0)
        )
        graph = _graph_of(workload)
        assert graph.component_count() == 2
        # No connected subset spans the two components.
        components = graph.components()
        for mask in graph.connected_subsets():
            assert any(mask & ~part == 0 for part in components)

    def test_all_subsets_is_the_full_powerset(self):
        workload = build_join_workload(
            JoinWorkloadConfig(topology="star", leaves=5, seed=0)
        )
        graph = _graph_of(workload)
        everything = list(graph.all_subsets())
        assert len(everything) == 2**5 - 1 - 5  # drop empty + singletons
        assert set(everything) >= set(graph.connected_subsets())


class TestOptimizerParity:
    """Graph enumeration chooses the same plan as the exhaustive seed
    search space — cost and operator shape — on every workload."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("mode", ["greedy", "traditional"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_identical_plan_and_cost(self, topology, mode, seed):
        workload = build_join_workload(
            JoinWorkloadConfig(topology=topology, leaves=5, seed=seed)
        )
        spec = GroupingSpec(
            group_keys=workload.group_keys, aggregates=workload.aggregates
        )
        leaves = [BaseLeaf(ref) for ref in workload.relations]
        plans = {}
        for enumeration in ("graph", "exhaustive"):
            optimizer = BlockOptimizer(
                workload.db.catalog,
                workload.db.params,
                mode=mode,
                enumeration=enumeration,
            )
            plans[enumeration] = optimizer.optimize_block(
                leaves, workload.predicates, spec, workload.select
            )
        assert plans["graph"].props.cost == plans["exhaustive"].props.cost
        assert explain(plans["graph"]) == explain(plans["exhaustive"])

    def test_graph_mode_skips_disconnected_subsets(self):
        workload = build_join_workload(
            JoinWorkloadConfig(topology="chain", leaves=6, seed=0)
        )
        spec = GroupingSpec(
            group_keys=workload.group_keys, aggregates=workload.aggregates
        )
        optimizer = BlockOptimizer(
            workload.db.catalog, workload.db.params, mode="greedy"
        )
        optimizer.optimize_block(
            [BaseLeaf(ref) for ref in workload.relations],
            workload.predicates,
            spec,
            workload.select,
        )
        stats = optimizer.stats
        # 6-leaf chain: 15 connected subsets out of 57 of size >= 2.
        assert stats.subsets_expanded == 15
        assert stats.connected_subsets_skipped == 57 - 15
        assert stats.predicate_split_cache_hits > 0
        assert stats.timings.get("dp", 0.0) > 0.0

    def test_exhaustive_mode_counts_everything(self):
        workload = build_join_workload(
            JoinWorkloadConfig(topology="chain", leaves=6, seed=0)
        )
        spec = GroupingSpec(
            group_keys=workload.group_keys, aggregates=workload.aggregates
        )
        optimizer = BlockOptimizer(
            workload.db.catalog,
            workload.db.params,
            mode="greedy",
            enumeration="exhaustive",
        )
        optimizer.optimize_block(
            [BaseLeaf(ref) for ref in workload.relations],
            workload.predicates,
            spec,
            workload.select,
        )
        assert optimizer.stats.connected_subsets_skipped == 0

    def test_unknown_enumeration_rejected(self):
        from repro.errors import PlanError

        workload = build_join_workload(
            JoinWorkloadConfig(topology="chain", leaves=4, seed=0)
        )
        with pytest.raises(PlanError):
            BlockOptimizer(
                workload.db.catalog,
                workload.db.params,
                enumeration="mystery",
            )


class TestScalingBenchSmoke:
    def test_smallest_size_runs_and_agrees(self):
        # The scaling benchmark raises AssertionError on any cost
        # disagreement between enumerations; run its smallest cell so
        # regressions surface in the tier-1 suite.
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        try:
            from bench_optimizer_scaling import run_scaling
        finally:
            sys.path.pop(0)
        results = run_scaling(
            sizes=(4,), topologies=("chain", "star"), repeats=1
        )
        assert len(results["speedups"]) == 4  # 2 topologies x 2 modes
        for entry in results["entries"]:
            assert entry["cost"] > 0
