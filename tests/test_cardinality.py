"""Unit tests for the Selinger-style selectivity/cardinality estimator."""

import pytest

from repro.algebra.expressions import (
    And,
    Comparison,
    Literal,
    Not,
    Or,
    col,
    lit,
)
from repro.cost.cardinality import CardinalityEstimator, ColMeta
from repro.cost.params import CostParams


@pytest.fixture
def estimator():
    return CardinalityEstimator(CostParams())


@pytest.fixture
def meta():
    return {
        ("e", "dno"): ColMeta(ndv=10, min_value=0, max_value=9),
        ("e", "sal"): ColMeta(ndv=100, min_value=0, max_value=1000),
        ("d", "dno"): ColMeta(ndv=20, min_value=0, max_value=19),
        ("e", "name"): ColMeta(ndv=50),  # no numeric range
    }


class TestLiteralSelectivity:
    def test_equality_is_one_over_ndv(self, estimator, meta):
        predicate = Comparison("=", col("e.dno"), lit(3))
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.1)

    def test_inequality_uses_range(self, estimator, meta):
        predicate = Comparison("<", col("e.sal"), lit(250))
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.25)

    def test_greater_than_uses_range(self, estimator, meta):
        predicate = Comparison(">", col("e.sal"), lit(750))
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.25)

    def test_not_equal(self, estimator, meta):
        predicate = Comparison("!=", col("e.dno"), lit(3))
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.9)

    def test_range_without_stats_uses_default(self, estimator, meta):
        predicate = Comparison("<", col("e.name"), lit("m"))
        assert estimator.selectivity(predicate, meta) == pytest.approx(
            CostParams().default_selectivity
        )

    def test_unknown_column_uses_default(self, estimator, meta):
        predicate = Comparison("=", col("zz.q"), lit(1))
        assert estimator.selectivity(predicate, meta) == pytest.approx(
            CostParams().default_selectivity
        )

    def test_selectivity_floor_at_one_over_ndv(self, estimator, meta):
        # below the minimum: clamped to 1/ndv, never zero
        predicate = Comparison("<", col("e.sal"), lit(-100))
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.01)

    def test_selectivity_capped_at_one(self, estimator, meta):
        predicate = Comparison("<", col("e.sal"), lit(99999))
        assert estimator.selectivity(predicate, meta) == 1.0

    def test_flipped_literal_side(self, estimator, meta):
        predicate = Comparison(">", lit(250), col("e.sal"))  # sal < 250
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.25)


class TestBooleanCombinations:
    def test_and_multiplies(self, estimator, meta):
        predicate = And(
            [
                Comparison("=", col("e.dno"), lit(1)),
                Comparison("<", col("e.sal"), lit(500)),
            ]
        )
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.05)

    def test_or_inclusion_exclusion(self, estimator, meta):
        predicate = Or(
            [
                Comparison("=", col("e.dno"), lit(1)),
                Comparison("=", col("e.dno"), lit(2)),
            ]
        )
        assert estimator.selectivity(predicate, meta) == pytest.approx(
            1 - 0.9 * 0.9
        )

    def test_not_complements(self, estimator, meta):
        predicate = Not(Comparison("=", col("e.dno"), lit(1)))
        assert estimator.selectivity(predicate, meta) == pytest.approx(0.9)

    def test_literal_true_false(self, estimator, meta):
        assert estimator.selectivity(Literal(True), meta) == 1.0
        assert estimator.selectivity(Literal(False), meta) == 0.0


class TestJoinAndGrouping:
    def test_equijoin_one_over_max_ndv(self, estimator, meta):
        rows = estimator.join_rows(
            100.0,
            200.0,
            ((("e", "dno"), ("d", "dno")),),
            (),
            meta,
        )
        assert rows == pytest.approx(100 * 200 / 20)

    def test_residual_scales_join(self, estimator, meta):
        residual = (Comparison("<", col("e.sal"), lit(250)),)
        rows = estimator.join_rows(
            100.0, 200.0, ((("e", "dno"), ("d", "dno")),), residual, meta
        )
        assert rows == pytest.approx(100 * 200 / 20 * 0.25)

    def test_group_rows_product_of_ndv(self, estimator, meta):
        groups = estimator.group_rows(
            1000.0, (("e", "dno"), ("d", "dno")), meta
        )
        assert groups == pytest.approx(200)

    def test_group_rows_capped_by_input(self, estimator, meta):
        groups = estimator.group_rows(
            50.0, (("e", "dno"), ("e", "sal")), meta
        )
        assert groups == 50.0

    def test_group_rows_empty_input(self, estimator, meta):
        assert estimator.group_rows(0.0, (("e", "dno"),), meta) == 0.0

    def test_having_known_columns_use_stats(self, estimator, meta):
        predicate = Comparison("=", col("e.dno"), lit(1))
        assert estimator.having_selectivity(
            predicate, meta
        ) == pytest.approx(0.1)

    def test_having_aggregate_uses_fallback(self, estimator, meta):
        predicate = Comparison(">", col("avg_sal"), lit(10))
        assert estimator.having_selectivity(
            predicate, meta
        ) == pytest.approx(CostParams().having_selectivity)


class TestColMeta:
    def test_from_stats_numeric(self):
        from repro.catalog.statistics import ColumnStats

        meta = ColMeta.from_stats(
            ColumnStats(n_distinct=5, min_value=1, max_value=9), rows=100
        )
        assert meta.ndv == 5 and meta.min_value == 1

    def test_from_stats_none(self):
        meta = ColMeta.from_stats(None, rows=42.0)
        assert meta.ndv == 42.0

    def test_clamped(self):
        meta = ColMeta(ndv=100).clamped(7.0)
        assert meta.ndv == 7.0
        assert ColMeta(ndv=3).clamped(7.0).ndv == 3
