"""Column-lifetime projection pruning: live-set analysis, the
post-DP :func:`prune_plan` pass, the optimizer flag, and the
differential guarantees (bag-identical rows, identical page IO) across
all three engines."""

from __future__ import annotations

import random

import pytest

from repro import CostParams, Database
from repro.algebra.plan import (
    GroupByNode,
    JoinNode,
    ScanNode,
    explain,
    plan_nodes,
)
from repro.cost.model import CostModel
from repro.optimizer.options import OptimizerOptions
from repro.optimizer.pruning import live_sets, prune_plan

PRUNING_OFF = OptimizerOptions(enable_projection_pruning=False)


def build_wide_db(memory_pages: int = 64, scale: int = 1) -> Database:
    """Three tables with columns that are filter-only, join-only, or
    output — the shapes lifetime analysis must tell apart."""
    db = Database(CostParams(memory_pages=memory_pages))
    db.create_table(
        "emp",
        [
            ("eno", "int"),
            ("dno", "int"),
            ("sal", "float"),
            ("age", "int"),
            ("bonus", "float"),
            ("grade", "int"),
        ],
        primary_key=["eno"],
    )
    db.create_table(
        "dept",
        [("dno", "int"), ("budget", "float"), ("loc", "int")],
        primary_key=["dno"],
    )
    db.create_table(
        "proj",
        [("pno", "int"), ("dno", "int"), ("funds", "float")],
        primary_key=["pno"],
    )
    rng = random.Random(7)
    db.insert(
        "emp",
        [
            (
                e,
                e % 11,
                float(rng.randint(100, 999)),
                rng.randint(20, 60),
                float(rng.randint(0, 99)),
                rng.randrange(5),
            )
            for e in range(220 * scale)
        ],
    )
    db.insert(
        "dept",
        [
            (d, float(rng.randint(1_000, 9_000)), d % 3)
            for d in range(11 * scale)
        ],
    )
    db.insert(
        "proj",
        [
            (p, p % 11, float(rng.randint(10, 500)))
            for p in range(40)
        ],
    )
    db.analyze()
    return db


# ----------------------------------------------------------------------
# Live-set analysis on optimizer-built shapes
# ----------------------------------------------------------------------


def scans_of(plan):
    return [node for node in plan_nodes(plan) if isinstance(node, ScanNode)]


def joins_of(plan):
    return [node for node in plan_nodes(plan) if isinstance(node, JoinNode)]


def test_filter_only_column_never_leaves_the_scan():
    db = build_wide_db()
    plan = db.optimize(
        "select e.sal from emp e, dept d "
        "where e.dno = d.dno and e.age < 40 and d.loc = 1"
    ).plan
    for join in joins_of(plan):
        assert ("e", "age") not in join.projection
        assert ("d", "loc") not in join.projection
    # age/loc are filter-only: evaluated during the scan (over the full
    # row-stored page), so the scan need not decode them either.
    for scan in scans_of(plan):
        names = {field.name for field in scan.schema}
        assert "age" not in names
        assert "loc" not in names


def test_join_key_dropped_above_its_last_join():
    db = build_wide_db()
    plan = db.optimize(
        "select e.sal from emp e, dept d where e.dno = d.dno"
    ).plan
    (join,) = joins_of(plan)
    # The equi key is consumed by the join itself; no ancestor needs it.
    assert ("e", "dno") not in join.projection
    assert ("d", "dno") not in join.projection


def test_reused_join_key_stays_live_until_its_last_use():
    db = build_wide_db()
    plan = db.optimize(
        "select e.sal from emp e, dept d, proj p "
        "where e.dno = d.dno and d.dno = p.dno"
    ).plan
    joins = joins_of(plan)
    assert len(joins) == 2
    top, bottom = joins[0], joins[1]
    assert bottom in list(plan_nodes(top))
    # The shared key survives the bottom join (the top one still probes
    # on it) but not the top join.
    assert any(key[1] == "dno" for key in bottom.projection)
    assert not any(key[1] == "dno" for key in top.projection)


def test_pruning_off_restores_wide_projections():
    db = build_wide_db()
    sql = (
        "select e.sal from emp e, dept d "
        "where e.dno = d.dno and e.age < 40"
    )
    wide = db.optimize(sql, options=PRUNING_OFF).plan
    (join,) = joins_of(wide)
    # The ablation keeps every predicate column alive to the top —
    # exactly the pre-pruning behavior.
    assert ("e", "age") in join.projection
    assert ("e", "dno") in join.projection


def test_residual_predicate_columns_live_up_to_the_residual_join():
    db = build_wide_db()
    plan = db.optimize(
        "select e.eno from emp e, dept d "
        "where e.dno = d.dno and e.sal > d.budget"
    ).plan
    (join,) = joins_of(plan)
    assert join.residuals
    # Residual inputs must reach the join, and die there.
    for scan in scans_of(plan):
        names = {field.name for field in scan.schema}
        if scan.alias == "e":
            assert "sal" in names
        else:
            assert "budget" in names
    assert ("e", "sal") not in join.projection
    assert ("d", "budget") not in join.projection


def test_search_stats_count_pruned_columns():
    db = build_wide_db()
    result = db.optimize(
        "select e.sal from emp e, dept d "
        "where e.dno = d.dno and e.age < 40 and d.loc = 1"
    )
    assert result.stats.projection_columns_pruned > 0


# ----------------------------------------------------------------------
# The standalone prune_plan pass
# ----------------------------------------------------------------------


def hand_built_plan(db: Database):
    """An unpruned two-join plan the way the pre-pruning optimizer (or a
    benchmark) would build it: every predicate column rides to the top."""
    plan = db.optimize(
        "select e.sal, p.funds from emp e, dept d, proj p "
        "where e.dno = d.dno and d.dno = p.dno and e.age < 50",
        options=PRUNING_OFF,
    ).plan
    return plan


def test_prune_plan_preserves_root_schema_and_rows():
    db = build_wide_db()
    plan = hand_built_plan(db)
    model = CostModel(db.catalog, db.params)
    pruned = prune_plan(plan, model=model)
    assert [f.key for f in pruned.schema] == [f.key for f in plan.schema]
    base_rows, base_io = db.execute_plan(plan)
    pruned_rows, pruned_io = db.execute_plan(pruned)
    assert sorted(base_rows.rows) == sorted(pruned_rows.rows)
    assert base_io.total == pruned_io.total


def test_prune_plan_narrows_interior_nodes():
    db = build_wide_db()
    plan = hand_built_plan(db)
    pruned = prune_plan(plan, model=CostModel(db.catalog, db.params))
    wide_joins = {id(j): len(j.projection) for j in joins_of(plan)}
    assert any(
        len(j.projection) < max(wide_joins.values())
        for j in joins_of(pruned)
    )
    top = joins_of(pruned)[0]
    assert not any(key[1] == "age" for key in top.projection)


def test_prune_plan_is_idempotent():
    db = build_wide_db()
    pruned = prune_plan(hand_built_plan(db))
    again = prune_plan(pruned)
    assert again is pruned  # second pass finds nothing to narrow


def test_prune_plan_counts_in_stats():
    from repro.optimizer.stats import SearchStats

    db = build_wide_db()
    stats = SearchStats()
    prune_plan(hand_built_plan(db), stats=stats)
    assert stats.plans_repruned == 1


def test_live_sets_track_requirements_top_down():
    db = build_wide_db()
    plan = hand_built_plan(db)
    sets = dict(
        (id(node), required) for node, required in live_sets(plan)
    )
    root_required = sets[id(plan)]
    assert root_required == frozenset(f.key for f in plan.schema)
    for scan in scans_of(plan):
        required = sets[id(scan)]
        # every requirement is satisfiable by the node itself
        assert all(scan.schema.has(*key) for key in required)
        if scan.alias == "e":
            # age is filter-only: applied at the scan, dead above it
            assert ("e", "age") not in required


def test_view_boundary_is_narrowed():
    """The outer query touches one of the view's three outputs; the
    post-DP pass must narrow the view-side plan below the rename."""
    db = build_wide_db()
    sql = (
        "with v(dno, asal, n) as "
        "(select e.dno, avg(e.sal), count(e.eno) from emp e "
        "group by e.dno) "
        "select e.eno from emp e, v x "
        "where e.dno = x.dno and e.sal > x.asal"
    )
    plan = db.optimize(sql).plan
    wide = db.optimize(sql, options=PRUNING_OFF).plan

    def widest_groupby_output(root):
        return max(
            len(node.projection)
            for node in plan_nodes(root)
            if isinstance(node, GroupByNode)
        )

    # dno and asal are consumed by the outer join; n never is — the
    # view-side group-by must not carry it across the view boundary.
    assert widest_groupby_output(plan) < widest_groupby_output(wide)
    rows_on, io_on = db.execute_plan(plan)
    rows_off, io_off = db.execute_plan(wide)
    assert sorted(rows_on.rows) == sorted(rows_off.rows)
    assert io_on.total == io_off.total


def test_matview_backing_scan_is_narrowed():
    db = build_wide_db()
    db.create_materialized_view(
        "mv_stats",
        "select e.dno as dno, avg(e.sal) as a, min(e.sal) as lo, "
        "max(e.sal) as hi, count(e.eno) as n from emp e group by e.dno",
    )
    result = db.query("select m.a from mv_stats m where m.dno < 5")
    scans = scans_of(result.plan)
    backing = [s for s in scans if s.table_name.startswith("__mv_")]
    assert backing, explain(result.plan)
    names = {field.name for field in backing[0].schema}
    # Only the filter column (applied at the scan) and the output column
    # are decoded; lo/hi/n never leave the pages.
    assert "lo" not in names and "hi" not in names and "n" not in names
    reference = db.reference("select m.a from mv_stats m where m.dno < 5")
    assert sorted(result.rows) == sorted(reference.rows)


# ----------------------------------------------------------------------
# Differential: pruned vs unpruned, all three engines
# ----------------------------------------------------------------------

DIFF_QUERIES = [
    "select e.sal from emp e, dept d "
    "where e.dno = d.dno and e.age < 40 and d.loc = 1",
    "select e.sal, p.funds from emp e, dept d, proj p "
    "where e.dno = d.dno and d.dno = p.dno and e.grade >= 1",
    "select d.budget, sum(e.sal) as s from emp e, dept d "
    "where e.dno = d.dno and e.bonus < 90 group by d.budget",
    "select e.eno from emp e, dept d "
    "where e.dno = d.dno and e.sal > d.budget / 100",
    "select e.dno, count(e.eno) as n from emp e "
    "where e.age < 55 group by e.dno having count(e.eno) > 2",
]

ENGINES = ["batch", "batch-rows", "rowexec"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("sql", DIFF_QUERIES)
def test_pruned_plans_row_and_io_identical(sql, engine):
    db = build_wide_db()
    on = db.query(sql, engine=engine)
    off = db.query(sql, options=PRUNING_OFF, engine=engine)
    assert sorted(on.rows) == sorted(off.rows)
    assert on.executed_io.total == off.executed_io.total


def _total_spill(root):
    reads = writes = 0
    for node in plan_nodes(root):
        metrics = getattr(node, "op_metrics", None)
        if metrics is not None:
            reads += metrics.spill_reads
            writes += metrics.spill_writes
    return reads, writes


SPILL_SQL = (
    "select e.sal, d.budget from emp e, dept d where e.dno = d.dno"
)


@pytest.fixture(scope="module")
def spill_db():
    return build_wide_db(memory_pages=3, scale=100)


@pytest.mark.parametrize("engine", ENGINES)
def test_pruned_plans_identical_under_spill(spill_db, engine):
    """Grace/spill paths: the spilling operators sit directly on the
    scans, whose widths pruning leaves unchanged here (every scanned
    column is live at scan level), so even spill IO must match."""
    db = spill_db
    base = db.optimize(SPILL_SQL, options=PRUNING_OFF).plan
    pruned = prune_plan(base, model=CostModel(db.catalog, db.params))
    assert pruned is not base
    rows_a, io_a, _ = db._execute_with_metrics(base, engine=engine)
    rows_b, io_b, _ = db._execute_with_metrics(pruned, engine=engine)
    assert sorted(rows_a.rows) == sorted(rows_b.rows)
    assert io_a.total == io_b.total
    if engine == "batch":
        assert _total_spill(base) == _total_spill(pruned)


def test_spill_shape_actually_spills(spill_db):
    plan = spill_db.optimize(SPILL_SQL, options=PRUNING_OFF).plan
    spill_db._execute_with_metrics(plan, engine="batch")
    reads, writes = _total_spill(plan)
    assert reads or writes


def test_pruning_never_costs_more():
    db = build_wide_db()
    for sql in DIFF_QUERIES:
        on = db.optimize(sql)
        off = db.optimize(sql, options=PRUNING_OFF)
        assert on.cost <= off.cost + 1e-9


# ----------------------------------------------------------------------
# Width-aware costing
# ----------------------------------------------------------------------


def test_cpu_cell_weight_charges_by_live_width():
    db = build_wide_db()
    sql = (
        "select e.sal, e.bonus, e.grade, e.age from emp e, dept d "
        "where e.dno = d.dno"
    )
    weighted = CostModel(db.catalog, CostParams(cpu_cell_weight=0.01))
    narrow = db.optimize(sql).plan
    wide = db.optimize(sql, options=PRUNING_OFF).plan
    assert weighted.annotate_tree(narrow).cost < weighted.annotate_tree(
        wide
    ).cost


def test_cpu_cell_weight_validation():
    with pytest.raises(ValueError):
        CostParams(cpu_cell_weight=-0.5)


def test_cpu_cell_weight_inert_by_default():
    db = build_wide_db()
    sql = "select e.sal from emp e, dept d where e.dno = d.dno"
    base = db.optimize(sql).plan
    recost = CostModel(db.catalog, CostParams()).annotate_tree(base)
    assert recost.cost == pytest.approx(base.props.cost)


def test_dp_prefers_keeping_wide_columns_below_fanout_under_cell_weight():
    """With a positive cell weight, the full optimizer's chosen cost on
    a duplicate-expanding chain must stay at or below the traditional
    left-deep order's — the width-aware term only adds information."""
    db = build_wide_db()
    sql = (
        "select e.sal, e.bonus, p.funds from emp e, dept d, proj p "
        "where e.dno = d.dno and d.dno = p.dno"
    )
    db.params = CostParams(cpu_cell_weight=0.05)
    full = db.optimize(sql)
    traditional = db.optimize(sql, optimizer="traditional")
    assert full.cost <= traditional.cost + 1e-9


# ----------------------------------------------------------------------
# Executor observability
# ----------------------------------------------------------------------


def test_explain_analyze_reports_width_and_cells():
    db = build_wide_db()
    result = db.query(
        "select e.sal from emp e, dept d where e.dno = d.dno"
    )
    text = result.explain(analyze=True)
    assert "width=" in text
    assert "cells=" in text


def test_pruning_reduces_materialized_cells():
    db = build_wide_db()
    sql = (
        "select e.sal from emp e, dept d "
        "where e.dno = d.dno and e.age < 40 and e.bonus < 95"
    )
    on = db.query(sql)
    off = db.query(sql, options=PRUNING_OFF)
    assert sorted(on.rows) == sorted(off.rows)
    assert (
        on.exec_metrics.total_cells < off.exec_metrics.total_cells
    )
