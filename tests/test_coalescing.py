"""Tests for simple coalescing grouping (Section 4.2, Figure 2(b))."""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.legality import check_plan
from repro.algebra.plan import GroupByNode, JoinNode, ProjectNode, ScanNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import rows_equal_bag
from repro.errors import TransformError
from repro.transforms import coalesce_plan, decompose_aggregates


class TestDecomposeAggregates:
    def test_shared_partials(self):
        aggregates = [
            ("a", AggregateCall("avg", col("t.x"))),
            ("s", AggregateCall("sum", col("t.x"))),
        ]
        decomposed = decompose_aggregates(aggregates)
        # avg needs sum+count; sum reuses avg's sum partial
        assert len(decomposed.partials) == 2

    def test_finalizers_cover_all_outputs(self):
        aggregates = [
            ("a", AggregateCall("avg", col("t.x"))),
            ("m", AggregateCall("max", col("t.y"))),
            ("c", AggregateCall("count", None)),
        ]
        decomposed = decompose_aggregates(aggregates)
        assert set(decomposed.finalizers) == {"a", "m", "c"}

    def test_coalescer_names_match_partials(self):
        decomposed = decompose_aggregates(
            [("s", AggregateCall("sum", col("t.x")))]
        )
        assert [n for n, _ in decomposed.partials] == [
            n for n, _ in decomposed.coalescers
        ]

    def test_median_blocks_decomposition(self):
        aggregates = [
            ("s", AggregateCall("sum", col("t.x"))),
            ("m", AggregateCall("median", col("t.x"))),
        ]
        assert decompose_aggregates(aggregates) is None

    def test_count_coalesces_via_sum(self):
        decomposed = decompose_aggregates(
            [("c", AggregateCall("count", col("t.x")))]
        )
        assert decomposed.coalescers[0][1].func_name == "sum"


class TestCoalescePlan:
    def build(self, db, funcs=("avg",), having=()):
        emp_columns = db.catalog.table("emp").columns
        dept_columns = db.catalog.table("dept").columns
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            ScanNode(
                "dept",
                "d",
                table_row_schema("d", dept_columns).fields,
                filters=(Comparison("<", col("d.budget"), lit(2_000_000)),),
            ),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        aggregates = [
            (f"{func}_out", AggregateCall(func, col("e.sal")))
            for func in funcs
        ]
        return GroupByNode(
            join,
            group_keys=[("d", "loc")],
            aggregates=aggregates,
            having=having,
        )

    def run_plan(self, db, plan):
        CostModel(db.catalog, db.params).annotate_tree(plan)
        context = ExecutionContext(db.catalog, db.io, db.params)
        return execute_plan(plan, context)

    @pytest.mark.parametrize(
        "funcs",
        [("sum",), ("count",), ("min",), ("max",), ("avg",), ("stddev",),
         ("avg", "sum", "count")],
    )
    def test_equivalence_per_function(self, emp_dept_db, funcs):
        original = self.build(emp_dept_db, funcs)
        baseline = self.run_plan(emp_dept_db, original)
        rewritten = coalesce_plan(self.build(emp_dept_db, funcs))
        check_plan(rewritten, emp_dept_db.catalog)
        result = self.run_plan(emp_dept_db, rewritten)
        assert rows_equal_bag(baseline.rows, result.rows)

    def test_structure_has_two_group_bys(self, emp_dept_db):
        rewritten = coalesce_plan(self.build(emp_dept_db))
        assert isinstance(rewritten, ProjectNode)
        upper = rewritten.child
        assert isinstance(upper, GroupByNode)
        join = upper.child
        assert isinstance(join, JoinNode)
        assert isinstance(join.left, GroupByNode)  # the added early G2

    def test_early_group_keys_include_join_columns(self, emp_dept_db):
        rewritten = coalesce_plan(self.build(emp_dept_db))
        early = rewritten.child.child.left
        assert ("e", "dno") in early.group_keys

    def test_output_schema_preserved(self, emp_dept_db):
        original = self.build(emp_dept_db, ("avg", "sum"))
        rewritten = coalesce_plan(self.build(emp_dept_db, ("avg", "sum")))
        assert rewritten.schema == original.schema

    def test_having_rewritten_over_finalizers(self, emp_dept_db):
        having = (Comparison(">", col("avg_out"), lit(40_000.0)),)
        original = self.build(emp_dept_db, having=having)
        baseline = self.run_plan(emp_dept_db, original)
        rewritten = coalesce_plan(self.build(emp_dept_db, having=having))
        result = self.run_plan(emp_dept_db, rewritten)
        assert rows_equal_bag(baseline.rows, result.rows)

    def test_median_rejected(self, emp_dept_db):
        with pytest.raises(TransformError):
            coalesce_plan(self.build(emp_dept_db, ("median",)))

    def test_right_side_aggregate_rejected(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        dept_columns = emp_dept_db.catalog.table("dept").columns
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            ScanNode("dept", "d", table_row_schema("d", dept_columns).fields),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        group = GroupByNode(
            join,
            group_keys=[("e", "dno")],
            aggregates=[("ab", AggregateCall("avg", col("d.budget")))],
        )
        with pytest.raises(TransformError):
            coalesce_plan(group)

    def test_group_by_without_join_rejected(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        group = GroupByNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            group_keys=[("e", "dno")],
            aggregates=[("s", AggregateCall("sum", col("e.sal")))],
        )
        with pytest.raises(TransformError):
            coalesce_plan(group)

    def test_non_key_join_still_correct(self, nopk_db):
        """Coalescing is exactly the transform that stays correct when
        each group row matches several partners (where invariant
        grouping is inapplicable)."""
        emp_columns = nopk_db.catalog.table("emp").columns
        events_columns = nopk_db.catalog.table("events").columns
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            ScanNode(
                "events", "x", table_row_schema("x", events_columns).fields
            ),
            method="hj",
            equi_keys=[(("e", "dno"), ("x", "dno"))],
        )
        original = GroupByNode(
            join,
            group_keys=[("x", "kind")],
            aggregates=[
                ("s", AggregateCall("sum", col("e.sal"))),
                ("c", AggregateCall("count", None)),
                ("a", AggregateCall("avg", col("e.sal"))),
            ],
        )
        baseline = self.run_plan(nopk_db, original)
        rewritten = coalesce_plan(
            GroupByNode(
                join,
                group_keys=[("x", "kind")],
                aggregates=original.aggregates,
            )
        )
        result = self.run_plan(nopk_db, rewritten)
        assert rows_equal_bag(baseline.rows, result.rows)
