"""Tests for the weighted CPU+IO objective (the Section 5 adaptation:
"the algorithms can be adapted to optimize a weighted combination of
CPU and IO cost")."""

import random

import pytest

from repro import CostParams, Database
from repro.cost.model import executed_weighted_cost
from repro.engine.reference import rows_equal_bag


def build(cpu_weight: float) -> Database:
    db = Database(CostParams(memory_pages=64, cpu_tuple_weight=cpu_weight))
    db.create_table(
        "sales", [("sid", "int"), ("dno", "int"), ("amt", "float")],
        primary_key=["sid"],
    )
    db.create_table(
        "dept", [("dno", "int"), ("name", "int")], primary_key=["dno"]
    )
    rng = random.Random(31)
    db.insert(
        "sales",
        [(i, i % 20, float(rng.randint(1, 99))) for i in range(5000)],
    )
    db.insert("dept", [(d, d) for d in range(20)])
    db.analyze()
    return db


SQL = """
select s.dno, sum(s.amt) as t from sales s, dept d
where s.dno = d.dno
group by s.dno
"""


class TestCpuWeight:
    def test_zero_weight_is_io_only(self):
        db = build(0.0)
        result = db.query(SQL, optimizer="greedy")
        assert result.estimated_cost == pytest.approx(
            result.executed_io.total
        )

    def test_positive_weight_raises_cost(self):
        io_only = build(0.0).query(SQL, execute=False).estimated_cost
        weighted = build(0.01).query(SQL, execute=False).estimated_cost
        assert weighted > io_only

    def test_cpu_weight_rewards_early_aggregation(self):
        """With everything fitting in memory, IO-only sees no gain from
        early grouping; a CPU-aware objective prefers shrinking the
        20x-expanding join input first."""
        io_only = build(0.0).query(SQL, optimizer="greedy", execute=False)
        assert io_only.optimization.stats.early_groupby_accepted == 0
        cpu_aware = build(0.05).query(SQL, optimizer="greedy", execute=False)
        assert cpu_aware.optimization.stats.early_groupby_accepted > 0

    def test_results_identical_under_any_weight(self):
        baseline = build(0.0).query(SQL)
        weighted = build(0.05).query(SQL)
        assert rows_equal_bag(baseline.rows, weighted.rows)

    def test_executed_weighted_cost_tracks_estimate(self):
        db = build(0.05)
        result = db.query(SQL, optimizer="greedy")
        executed = executed_weighted_cost(
            result.plan, db.params, result.executed_io.total
        )
        # exact statistics, no filters: estimate equals execution
        assert executed == pytest.approx(result.estimated_cost, rel=0.01)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CostParams(cpu_tuple_weight=-1.0)

    def test_guarantee_holds_under_weighted_objective(self):
        db = build(0.05)
        result = db.query(SQL, optimizer="full", execute=False)
        assert (
            result.estimated_cost
            <= result.optimization.traditional_cost + 1e-9
        )
