"""Tests for Kim-style unnesting of correlated subqueries (Section 1)."""

from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.sql import bind_sql
from repro.transforms import unnest_sql


class TestUnnestSql:
    def test_reports_generated_views(self, emp_dept_db):
        report = unnest_sql(
            "select e1.sal from emp e1 where e1.sal > "
            "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
            emp_dept_db.catalog,
        )
        assert report.unnested_count == 1
        assert len(report.query.views) == 1

    def test_no_subquery_no_views(self, emp_dept_db):
        report = unnest_sql(
            "select e.sal from emp e where e.age < 30",
            emp_dept_db.catalog,
        )
        assert report.unnested_count == 0

    def test_two_subqueries(self, emp_dept_db):
        report = unnest_sql(
            "select e1.sal from emp e1 where e1.sal > "
            "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno) "
            "and e1.sal < "
            "(select max(e3.sal) from emp e3 where e3.dno = e1.dno)",
            emp_dept_db.catalog,
        )
        assert report.unnested_count == 2

    def test_semantics_match_view_form(self, emp_dept_db):
        """The unnested subquery must equal the hand-written
        aggregate-view query — Kim's equivalence."""
        nested = bind_sql(
            "select e1.sal from emp e1 where e1.age < 30 and e1.sal > "
            "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
            emp_dept_db.catalog,
        )
        view_form = bind_sql(
            "with a1(dno, asal) as "
            "(select e2.dno, avg(e2.sal) from emp e2 group by e2.dno) "
            "select e1.sal from emp e1, a1 b "
            "where e1.dno = b.dno and e1.age < 30 and e1.sal > b.asal",
            emp_dept_db.catalog,
        )
        nested_rows = evaluate_canonical(nested, emp_dept_db.catalog).rows
        view_rows = evaluate_canonical(view_form, emp_dept_db.catalog).rows
        assert rows_equal_bag(nested_rows, view_rows)

    def test_min_max_subqueries(self, emp_dept_db):
        for func in ("min", "max", "sum"):
            report = unnest_sql(
                f"select e1.sal from emp e1 where e1.sal >= "
                f"(select {func}(e2.sal) from emp e2 where e2.dno = e1.dno)",
                emp_dept_db.catalog,
            )
            result = evaluate_canonical(report.query, emp_dept_db.catalog)
            # every department's top earner qualifies under max
            assert result.rows or func != "max"

    def test_empty_inner_groups_drop_outer_rows(self, emp_dept_db):
        """SQL semantics: a scalar subquery over an empty set yields
        NULL and the comparison fails; the join form drops the row the
        same way (the soundness argument for non-COUNT aggregates)."""
        report = unnest_sql(
            "select e1.sal from emp e1 where e1.sal > "
            "(select avg(e2.sal) from emp e2 "
            "where e2.dno = e1.dno and e2.age < 0)",
            emp_dept_db.catalog,
        )
        result = evaluate_canonical(report.query, emp_dept_db.catalog)
        assert result.rows == []
