"""Tests for the brute-force reference evaluator itself.

The reference is the ground truth of the whole test suite, so it gets
its own checks against hand-computed answers on tiny data.
"""

import pytest

from repro import Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.query import AggregateView, CanonicalQuery, QueryBlock, TableRef
from repro.engine.reference import (
    evaluate_block,
    evaluate_canonical,
    evaluate_view,
    rows_equal_bag,
)


@pytest.fixture
def tiny_db():
    db = Database()
    db.create_table("t", [("g", "int"), ("v", "int")])
    db.insert("t", [(1, 10), (1, 20), (2, 5), (2, 5), (3, 7)])
    db.create_table("u", [("g", "int"), ("w", "int")], primary_key=["g"])
    db.insert("u", [(1, 100), (2, 200)])
    return db


class TestEvaluateBlock:
    def test_spj(self, tiny_db):
        block = QueryBlock(
            relations=(TableRef("t", "a"), TableRef("u", "b")),
            predicates=(Comparison("=", col("a.g"), col("b.g")),),
            select=(("v", col("a.v")), ("w", col("b.w"))),
        )
        result = evaluate_block(block, tiny_db.catalog)
        assert rows_equal_bag(
            result.rows, [(10, 100), (20, 100), (5, 200), (5, 200)]
        )

    def test_grouped(self, tiny_db):
        block = QueryBlock(
            relations=(TableRef("t", "a"),),
            group_by=(col("a.g"),),
            aggregates=(
                ("s", AggregateCall("sum", col("a.v"))),
                ("n", AggregateCall("count", None)),
            ),
            select=(("g", col("a.g")), ("s", col("s")), ("n", col("n"))),
        )
        result = evaluate_block(block, tiny_db.catalog)
        assert rows_equal_bag(result.rows, [(1, 30, 2), (2, 10, 2), (3, 7, 1)])

    def test_having(self, tiny_db):
        block = QueryBlock(
            relations=(TableRef("t", "a"),),
            group_by=(col("a.g"),),
            aggregates=(("n", AggregateCall("count", None)),),
            having=(Comparison(">", col("n"), lit(1)),),
            select=(("g", col("a.g")),),
        )
        result = evaluate_block(block, tiny_db.catalog)
        assert rows_equal_bag(result.rows, [(1,), (2,)])

    def test_duplicate_rows_preserved(self, tiny_db):
        block = QueryBlock(
            relations=(TableRef("t", "a"),),
            predicates=(Comparison("=", col("a.g"), lit(2)),),
            select=(("v", col("a.v")),),
        )
        result = evaluate_block(block, tiny_db.catalog)
        assert result.rows == [(5,), (5,)]  # bag semantics

    def test_select_expression(self, tiny_db):
        from repro.algebra.expressions import Arith

        block = QueryBlock(
            relations=(TableRef("t", "a"),),
            select=(("double", Arith("*", col("a.v"), lit(2))),),
        )
        result = evaluate_block(block, tiny_db.catalog)
        assert sorted(r[0] for r in result.rows) == [10, 10, 14, 20, 40]


class TestEvaluateCanonical:
    def test_view_join(self, tiny_db):
        view = AggregateView(
            alias="s",
            block=QueryBlock(
                relations=(TableRef("t", "a"),),
                group_by=(col("a.g"),),
                aggregates=(("total", AggregateCall("sum", col("a.v"))),),
                select=(("g", col("a.g")), ("total", col("total"))),
            ),
        )
        query = CanonicalQuery(
            base_tables=(TableRef("u", "b"),),
            views=(view,),
            predicates=(Comparison("=", col("b.g"), col("s.g")),),
            select=(("w", col("b.w")), ("total", col("s.total"))),
        )
        result = evaluate_canonical(query, tiny_db.catalog)
        assert rows_equal_bag(result.rows, [(100, 30), (200, 10)])

    def test_view_alias_fields(self, tiny_db):
        view = AggregateView(
            alias="s",
            block=QueryBlock(
                relations=(TableRef("t", "a"),),
                group_by=(col("a.g"),),
                aggregates=(("total", AggregateCall("sum", col("a.v"))),),
                select=(("g", col("a.g")), ("total", col("total"))),
            ),
        )
        materialized = evaluate_view(view, tiny_db.catalog)
        assert materialized.schema.has("s", "total")

    def test_order_and_limit(self, tiny_db):
        query = CanonicalQuery(
            base_tables=(TableRef("t", "a"),),
            select=(("v", col("a.v")),),
            order_by=(("v", True),),
            limit=2,
        )
        result = evaluate_canonical(query, tiny_db.catalog)
        assert result.rows == [(20,), (10,)]

    def test_rid_exposed_for_base_tables(self, tiny_db):
        query = CanonicalQuery(
            base_tables=(TableRef("t", "a"),),
            select=(("rid", col("a._rid")),),
        )
        result = evaluate_canonical(query, tiny_db.catalog)
        assert sorted(r[0] for r in result.rows) == [0, 1, 2, 3, 4]


class TestRowsEqualBag:
    def test_order_insensitive(self):
        assert rows_equal_bag([(1,), (2,)], [(2,), (1,)])

    def test_multiplicity_sensitive(self):
        assert not rows_equal_bag([(1,), (1,)], [(1,), (2,)])

    def test_length_mismatch(self):
        assert not rows_equal_bag([(1,)], [(1,), (1,)])

    def test_float_tolerance(self):
        assert rows_equal_bag([(0.1 + 0.2,)], [(0.3,)])

    def test_float_difference_detected(self):
        assert not rows_equal_bag([(0.30001,)], [(0.3,)])

    def test_mixed_types(self):
        assert rows_equal_bag([(1, "a"), (2, "b")], [(2, "b"), (1, "a")])
