"""Tests for the DP block optimizer and the greedy conservative
heuristic (Section 5.2)."""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.legality import check_plan
from repro.algebra.plan import GroupByNode, plan_nodes
from repro.algebra.query import TableRef
from repro.cost import CostParams
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import (
    evaluate_block,
    rows_equal_bag,
)
from repro.algebra.query import QueryBlock
from repro.errors import PlanError
from repro.optimizer import BaseLeaf, BlockOptimizer, GroupingSpec
from repro.optimizer.options import OptimizerOptions


def optimize(db, leaves, predicates, spec, select, mode="greedy",
             options=None):
    optimizer = BlockOptimizer(
        db.catalog, db.params, options or OptimizerOptions(), mode=mode
    )
    plan = optimizer.optimize_block(leaves, predicates, spec, select)
    return plan, optimizer


def run_plan(db, plan):
    context = ExecutionContext(db.catalog, db.io, db.params)
    return execute_plan(plan, context)


class TestSpjOptimization:
    def leaves(self):
        return [
            BaseLeaf(TableRef("emp", "e")),
            BaseLeaf(TableRef("dept", "d")),
        ]

    def predicates(self):
        return (
            Comparison("=", col("e.dno"), col("d.dno")),
            Comparison("<", col("e.age"), lit(30)),
        )

    def test_produces_legal_plan(self, emp_dept_db):
        plan, _ = optimize(
            emp_dept_db,
            self.leaves(),
            self.predicates(),
            None,
            [("sal", col("e.sal")), ("budget", col("d.budget"))],
        )
        check_plan(plan, emp_dept_db.catalog)
        assert plan.props is not None

    def test_matches_reference(self, emp_dept_db):
        select = [("sal", col("e.sal")), ("budget", col("d.budget"))]
        plan, _ = optimize(
            emp_dept_db, self.leaves(), self.predicates(), None, select
        )
        block = QueryBlock(
            relations=tuple(leaf.ref for leaf in self.leaves()),
            predicates=self.predicates(),
            select=tuple(select),
        )
        reference = evaluate_block(block, emp_dept_db.catalog)
        result = run_plan(emp_dept_db, plan)
        assert rows_equal_bag(reference.rows, result.rows)

    def test_filters_pushed_to_scans(self, emp_dept_db):
        plan, _ = optimize(
            emp_dept_db,
            self.leaves(),
            self.predicates(),
            None,
            [("sal", col("e.sal"))],
        )
        scans = [
            node
            for node in plan_nodes(plan)
            if type(node).__name__ == "ScanNode"
        ]
        emp_scan = next(s for s in scans if s.alias == "e")
        assert emp_scan.filters  # the age filter lives at the scan

    def test_three_way_join_linear(self, emp_dept_db):
        leaves = [
            BaseLeaf(TableRef("emp", "e1")),
            BaseLeaf(TableRef("emp", "e2")),
            BaseLeaf(TableRef("dept", "d")),
        ]
        predicates = (
            Comparison("=", col("e1.dno"), col("d.dno")),
            Comparison("=", col("e2.dno"), col("d.dno")),
        )
        select = [("a", col("e1.sal")), ("b", col("e2.sal"))]
        plan, _ = optimize(emp_dept_db, leaves, predicates, None, select)
        check_plan(plan, emp_dept_db.catalog)
        block = QueryBlock(
            relations=tuple(leaf.ref for leaf in leaves),
            predicates=predicates,
            select=tuple(select),
        )
        reference = evaluate_block(block, emp_dept_db.catalog)
        result = run_plan(emp_dept_db, plan)
        assert rows_equal_bag(reference.rows, result.rows)

    def test_single_relation_block(self, emp_dept_db):
        plan, _ = optimize(
            emp_dept_db,
            [BaseLeaf(TableRef("emp", "e"))],
            (Comparison("=", col("e.dno"), lit(2)),),
            None,
            [("sal", col("e.sal"))],
        )
        result = run_plan(emp_dept_db, plan)
        assert len(result.rows) == 20  # fixture: dno = eno % 7, 140 rows

    def test_cross_join_fallback(self, emp_dept_db):
        plan, _ = optimize(
            emp_dept_db,
            self.leaves(),
            (),  # no predicates at all
            None,
            [("sal", col("e.sal")), ("budget", col("d.budget"))],
        )
        result = run_plan(emp_dept_db, plan)
        assert len(result.rows) == 140 * 7

    def test_duplicate_alias_rejected(self, emp_dept_db):
        with pytest.raises(PlanError):
            optimize(
                emp_dept_db,
                [BaseLeaf(TableRef("emp", "e")), BaseLeaf(TableRef("dept", "e"))],
                (),
                None,
                [("x", col("e.sal"))],
            )

    def test_stats_populated(self, emp_dept_db):
        _, optimizer = optimize(
            emp_dept_db,
            self.leaves(),
            self.predicates(),
            None,
            [("sal", col("e.sal"))],
        )
        assert optimizer.stats.joinplan_calls > 0
        assert optimizer.stats.subsets_expanded >= 1
        assert optimizer.stats.plans_retained > 0


class TestGroupedBlocks:
    def grouped_args(self):
        leaves = [
            BaseLeaf(TableRef("emp", "e")),
            BaseLeaf(TableRef("dept", "d")),
        ]
        predicates = (Comparison("=", col("e.dno"), col("d.dno")),)
        spec = GroupingSpec(
            group_keys=(("d", "loc"),),
            aggregates=(
                ("total", AggregateCall("sum", col("e.sal"))),
                ("n", AggregateCall("count", None)),
            ),
        )
        select = [
            ("loc", col("d.loc")),
            ("total", col("total")),
            ("n", col("n")),
        ]
        return leaves, predicates, spec, select

    def reference(self, db):
        leaves, predicates, spec, select = self.grouped_args()
        block = QueryBlock(
            relations=tuple(leaf.ref for leaf in leaves),
            predicates=predicates,
            group_by=(col("d.loc"),),
            aggregates=spec.aggregates,
            select=tuple(select),
        )
        return evaluate_block(block, db.catalog)

    def test_traditional_matches_reference(self, emp_dept_db):
        leaves, predicates, spec, select = self.grouped_args()
        plan, _ = optimize(
            emp_dept_db, leaves, predicates, spec, select,
            mode="traditional",
        )
        result = run_plan(emp_dept_db, plan)
        assert rows_equal_bag(self.reference(emp_dept_db).rows, result.rows)

    def test_greedy_matches_reference(self, emp_dept_db):
        leaves, predicates, spec, select = self.grouped_args()
        plan, _ = optimize(emp_dept_db, leaves, predicates, spec, select)
        result = run_plan(emp_dept_db, plan)
        assert rows_equal_bag(self.reference(emp_dept_db).rows, result.rows)

    def test_greedy_never_worse_than_traditional(self, emp_dept_db):
        leaves, predicates, spec, select = self.grouped_args()
        greedy_plan, _ = optimize(
            emp_dept_db, leaves, predicates, spec, select
        )
        traditional_plan, _ = optimize(
            emp_dept_db, leaves, predicates, spec, select,
            mode="traditional",
        )
        assert greedy_plan.props.cost <= traditional_plan.props.cost

    def test_traditional_groups_after_all_joins(self, emp_dept_db):
        leaves, predicates, spec, select = self.grouped_args()
        plan, _ = optimize(
            emp_dept_db, leaves, predicates, spec, select,
            mode="traditional",
        )
        groups = [
            node for node in plan_nodes(plan)
            if isinstance(node, GroupByNode)
        ]
        assert len(groups) == 1  # never an early group-by

    def test_having_applied(self, emp_dept_db):
        leaves, predicates, spec, select = self.grouped_args()
        spec = GroupingSpec(
            group_keys=spec.group_keys,
            aggregates=spec.aggregates,
            having=(Comparison(">", col("n"), lit(30)),),
        )
        plan, _ = optimize(emp_dept_db, leaves, predicates, spec, select)
        result = run_plan(emp_dept_db, plan)
        position = plan.schema.index_of(None, "n")
        assert all(row[position] > 30 for row in result.rows)

    def test_median_disables_early_grouping(self, emp_dept_db):
        leaves, predicates, _, _ = self.grouped_args()
        spec = GroupingSpec(
            group_keys=(("d", "loc"),),
            aggregates=(("m", AggregateCall("median", col("e.sal"))),),
        )
        select = [("loc", col("d.loc")), ("m", col("m"))]
        plan, optimizer = optimize(
            emp_dept_db, leaves, predicates, spec, select
        )
        assert optimizer.stats.early_groupby_accepted == 0
        result = run_plan(emp_dept_db, plan)
        assert result.rows  # still executes correctly

    def test_count_star_early_grouping_correct(self, nopk_db):
        """COUNT(*) partials multiply through joins; the coalescing sum
        must still equal the pair count."""
        leaves = [
            BaseLeaf(TableRef("emp", "e")),
            BaseLeaf(TableRef("events", "x")),
        ]
        predicates = (Comparison("=", col("e.dno"), col("x.dno")),)
        spec = GroupingSpec(
            group_keys=(("x", "kind"),),
            aggregates=(("n", AggregateCall("count", None)),),
        )
        select = [("kind", col("x.kind")), ("n", col("n"))]
        block = QueryBlock(
            relations=tuple(leaf.ref for leaf in leaves),
            predicates=predicates,
            group_by=(col("x.kind"),),
            aggregates=spec.aggregates,
            select=tuple(select),
        )
        reference = evaluate_block(block, nopk_db.catalog)
        # force early grouping to be considered by shrinking memory
        plan, _ = optimize(nopk_db, leaves, predicates, spec, select)
        result = run_plan(nopk_db, plan)
        assert rows_equal_bag(reference.rows, result.rows)


class TestEarlyGroupingDecision:
    def build_big_db(self):
        """Two relations big enough that eager aggregation saves IO."""
        import random

        from repro import Database

        db = Database(CostParams(memory_pages=4))
        db.create_table(
            "sales",
            [("sid", "int"), ("dno", "int"), ("amt", "float")],
            primary_key=["sid"],
        )
        db.create_table(
            "details",
            [("rid", "int"), ("dno", "int"), ("x", "float"), ("y", "float")],
            primary_key=["rid"],
        )
        rng = random.Random(8)
        db.insert(
            "sales",
            [(i, i % 10, float(rng.randint(1, 99))) for i in range(3000)],
        )
        db.insert(
            "details",
            [(i, i % 10, float(i), float(i)) for i in range(3000)],
        )
        db.analyze()
        return db

    def args(self):
        leaves = [
            BaseLeaf(TableRef("sales", "s")),
            BaseLeaf(TableRef("details", "d")),
        ]
        predicates = (Comparison("=", col("s.dno"), col("d.dno")),)
        spec = GroupingSpec(
            group_keys=(("s", "dno"),),
            aggregates=(("t", AggregateCall("sum", col("s.amt"))),),
        )
        select = [("dno", col("s.dno")), ("t", col("t"))]
        return leaves, predicates, spec, select

    def test_greedy_applies_early_group_when_cheaper(self):
        db = self.build_big_db()
        leaves, predicates, spec, select = self.args()
        plan, optimizer = optimize(db, leaves, predicates, spec, select)
        traditional, _ = optimize(
            db, leaves, predicates, spec, select, mode="traditional"
        )
        assert optimizer.stats.early_groupby_accepted > 0
        assert plan.props.cost < traditional.props.cost

    def test_early_group_plan_correct(self):
        db = self.build_big_db()
        leaves, predicates, spec, select = self.args()
        plan, _ = optimize(db, leaves, predicates, spec, select)
        block = QueryBlock(
            relations=tuple(leaf.ref for leaf in leaves),
            predicates=predicates,
            group_by=(col("s.dno"),),
            aggregates=spec.aggregates,
            select=tuple(select),
        )
        reference = evaluate_block(block, db.catalog)
        result = run_plan(db, plan)
        assert rows_equal_bag(reference.rows, result.rows)

    def test_width_guard_blocks_wider_plans(self):
        """With the width guard off, the greedy rule may accept plans
        the paper's safety condition would reject; with it on, accepted
        early groupings are never wider."""
        db = self.build_big_db()
        leaves, predicates, spec, select = self.args()
        guarded, opt_guarded = optimize(
            db, leaves, predicates, spec, select,
            options=OptimizerOptions(width_guard=True),
        )
        unguarded, opt_unguarded = optimize(
            db, leaves, predicates, spec, select,
            options=OptimizerOptions(width_guard=False),
        )
        # both remain correct; the guard can only reduce acceptances
        assert (
            opt_guarded.stats.early_groupby_accepted
            <= opt_unguarded.stats.early_groupby_accepted
        )
