"""Tests for predicate propagation across blocks ([LMS94] baseline)."""

import pytest

from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.sql import bind_sql
from repro.transforms import propagate_predicates

VIEW_SQL = """
with v(dno, loc2, asal) as (
    select e.dno, e.age, avg(e.sal) from emp e group by e.dno, e.age
)
select v.asal from v where {predicate}
"""


def bound(db, predicate):
    return bind_sql(VIEW_SQL.format(predicate=predicate), db.catalog)


class TestMovability:
    def test_group_column_literal_moves(self, emp_dept_db):
        query = bound(emp_dept_db, "v.dno = 3")
        moved = propagate_predicates(query)
        assert moved.predicates == ()
        assert len(moved.views[0].block.predicates) == 1
        # rewritten into the inner namespace
        inner = moved.views[0].block.predicates[0]
        assert all(key[0] != "v" for key in inner.columns())

    def test_range_predicate_moves(self, emp_dept_db):
        query = bound(emp_dept_db, "v.loc2 < 30")
        moved = propagate_predicates(query)
        assert moved.predicates == ()

    def test_aggregate_output_stays(self, emp_dept_db):
        query = bound(emp_dept_db, "v.asal > 50000")
        moved = propagate_predicates(query)
        assert moved is query  # nothing movable: untouched

    def test_mixed_conjuncts_split(self, emp_dept_db):
        query = bound(emp_dept_db, "v.dno = 3 and v.asal > 0")
        moved = propagate_predicates(query)
        assert len(moved.predicates) == 1  # the aggregate one stays
        assert len(moved.views[0].block.predicates) == 1

    def test_join_predicates_stay(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e group by e.dno
        )
        select v.asal from dept d, v where d.dno = v.dno
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        moved = propagate_predicates(query)
        assert moved is query

    def test_no_views_untouched(self, emp_dept_db):
        query = bind_sql(
            "select e.sal from emp e where e.dno = 1", emp_dept_db.catalog
        )
        assert propagate_predicates(query) is query


class TestEquivalence:
    @pytest.mark.parametrize(
        "predicate",
        ["v.dno = 3", "v.loc2 < 30", "v.dno = 3 and v.loc2 > 20",
         "v.dno in (1, 2)", "v.dno between 2 and 4 and v.asal > 0"],
    )
    def test_results_unchanged(self, emp_dept_db, predicate):
        query = bound(emp_dept_db, predicate)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        moved = propagate_predicates(query)
        result = evaluate_canonical(moved, emp_dept_db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)

    def test_optimizers_benefit_and_agree(self, emp_dept_db):
        sql = VIEW_SQL.format(predicate="v.dno = 3")
        reference = emp_dept_db.reference(sql)
        for optimizer in ("traditional", "full"):
            result = emp_dept_db.query(sql, optimizer=optimizer)
            assert rows_equal_bag(reference.rows, result.rows)

    def test_propagation_reduces_view_cardinality(self, emp_dept_db):
        sql = VIEW_SQL.format(predicate="v.dno = 3")
        result = emp_dept_db.query(sql, optimizer="traditional")
        # the view's scan now filters on dno before grouping: the
        # group-by node sees ~1/7 of the employees
        text = result.explain()
        assert "filter" in text
