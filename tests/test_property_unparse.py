"""Property test: SQL round-trip over random canonical queries.

For every generated query: unparse -> re-bind -> evaluate must give the
same bag of rows as the original. Exercises the unparser, the parser,
and the binder together on structurally diverse inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.sql import bind_sql
from repro.sql.unparse import query_to_sql
from repro.workloads import RandomQueryConfig, random_queries


@st.composite
def generated_query(draw):
    seed = draw(st.integers(min_value=0, max_value=5000))
    db, queries = random_queries(
        RandomQueryConfig(seed=seed, queries=2, fact_rows=60, dim_rows=8)
    )
    index = draw(st.integers(min_value=0, max_value=len(queries) - 1))
    return db, queries[index]


class TestUnparseRoundTrip:
    @given(case=generated_query())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_semantics(self, case):
        db, query = case
        emitted = query_to_sql(query)
        rebound = bind_sql(emitted, db.catalog)
        original_rows = evaluate_canonical(query, db.catalog).rows
        rebound_rows = evaluate_canonical(rebound, db.catalog).rows
        assert rows_equal_bag(original_rows, rebound_rows), emitted

    @given(case=generated_query())
    @settings(max_examples=15, deadline=None)
    def test_round_trip_optimizes_identically_correct(self, case):
        db, query = case
        rebound = bind_sql(query_to_sql(query), db.catalog)
        from repro.optimizer import optimize_query

        result = optimize_query(rebound, db.catalog, db.params)
        rows, _ = db.execute_plan(result.plan)
        reference = evaluate_canonical(query, db.catalog)
        assert rows_equal_bag(reference.rows, rows.rows)
