"""Property test: SQL round-trip over random canonical queries.

For every generated query: unparse -> re-bind -> evaluate must give the
same bag of rows as the original. Exercises the unparser, the parser,
and the binder together on structurally diverse inputs.

``TestSqlgenFixedPoint`` drives the same loop from the fuzzer's
grammar (:mod:`repro.testing.sqlgen`), whose queries carry subqueries
and LEFT JOIN clauses: ``unparse(bind(sql))`` must be a *fixed point* —
re-binding the emitted text and unparsing again reproduces it
byte-for-byte, so nothing (join kinds, subquery specs, negation,
null-awareness) is dropped or reordered on the way through.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.sql import bind_sql
from repro.sql.unparse import query_to_sql
from repro.testing.runner import PROFILES
from repro.testing.sqlgen import generate_script
from repro.workloads import RandomQueryConfig, random_queries


@st.composite
def generated_query(draw):
    seed = draw(st.integers(min_value=0, max_value=5000))
    db, queries = random_queries(
        RandomQueryConfig(seed=seed, queries=2, fact_rows=60, dim_rows=8)
    )
    index = draw(st.integers(min_value=0, max_value=len(queries) - 1))
    return db, queries[index]


class TestUnparseRoundTrip:
    @given(case=generated_query())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_semantics(self, case):
        db, query = case
        emitted = query_to_sql(query)
        rebound = bind_sql(emitted, db.catalog)
        original_rows = evaluate_canonical(query, db.catalog).rows
        rebound_rows = evaluate_canonical(rebound, db.catalog).rows
        assert rows_equal_bag(original_rows, rebound_rows), emitted

    @given(case=generated_query())
    @settings(max_examples=15, deadline=None)
    def test_round_trip_optimizes_identically_correct(self, case):
        db, query = case
        rebound = bind_sql(query_to_sql(query), db.catalog)
        from repro.optimizer import optimize_query

        result = optimize_query(rebound, db.catalog, db.params)
        rows, _ = db.execute_plan(result.plan)
        reference = evaluate_canonical(query, db.catalog)
        assert rows_equal_bag(reference.rows, rows.rows)


@st.composite
def sqlgen_query(draw):
    """One fuzz-grammar query (subqueries / LEFT JOIN included) plus a
    database holding its script's schema and data."""
    seed = draw(st.integers(min_value=0, max_value=4000))
    script = generate_script(seed, PROFILES["smoke"])
    db = Database()
    queries = []
    for stmt in script:
        if stmt.kind == "query":
            queries.append(stmt.render())
        else:
            db.execute(stmt.render())
    assume(queries)
    index = draw(st.integers(min_value=0, max_value=len(queries) - 1))
    return db, queries[index]


class TestSqlgenFixedPoint:
    @given(case=sqlgen_query())
    @settings(max_examples=30, deadline=None)
    def test_parse_unparse_parse_fixed_point(self, case):
        db, sql = case
        first = query_to_sql(db.bind(sql))
        second = query_to_sql(db.bind(first))
        assert second == first, sql

    @given(case=sqlgen_query())
    @settings(max_examples=10, deadline=None)
    def test_unparsed_text_answers_identically(self, case):
        db, sql = case
        emitted = query_to_sql(db.bind(sql))
        assert rows_equal_bag(
            db.reference(sql).rows, db.reference(emitted).rows
        ), emitted
