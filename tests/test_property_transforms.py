"""Property-based equivalence tests for the paper's transformations.

The data is randomized (hypothesis), the query structure is the paper's:
if pull-up / invariant split / coalescing ever change a query's result
on *any* generated instance, these tests find it."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.sql import bind_sql
from repro.transforms import apply_invariant_split, pull_up

emp_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # dno
        st.integers(min_value=0, max_value=100),  # sal
        st.integers(min_value=18, max_value=60),  # age
    ),
    min_size=0,
    max_size=30,
)
dept_rows = st.lists(
    st.integers(min_value=0, max_value=300),  # budget per dno 0..4
    min_size=5,
    max_size=5,
)


def build(emps, budgets):
    db = Database()
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept", [("dno", "int"), ("budget", "float")], primary_key=["dno"]
    )
    db.insert(
        "emp",
        [
            (eno, dno, float(sal), age)
            for eno, (dno, sal, age) in enumerate(emps)
        ],
    )
    db.insert("dept", [(d, float(b)) for d, b in enumerate(budgets)])
    db.analyze()
    return db


EXAMPLE1 = """
with a1(dno, asal) as (select e2.dno, avg(e2.sal) from emp e2 group by e2.dno)
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 40 and e1.sal > b.asal
"""

VIEW_WITH_DEPT = """
with c(dno, asal) as (
    select e.dno, avg(e.sal) from emp e, dept d
    where e.dno = d.dno and d.budget < 150
    group by e.dno
)
select v.dno, v.asal from c v where v.asal >= 0
"""

MULTI_AGG = """
with v(dno, s, m, n) as (
    select e.dno, sum(e.sal), max(e.sal), count(*)
    from emp e group by e.dno
)
select d.budget, v.s, v.m, v.n from dept d, v
where d.dno = v.dno and v.s > 10
"""


class TestPullUpEquivalence:
    @given(emps=emp_rows, budgets=dept_rows)
    @settings(max_examples=40, deadline=None)
    def test_example1_pull_up(self, emps, budgets):
        db = build(emps, budgets)
        query = bind_sql(EXAMPLE1, db.catalog)
        reference = evaluate_canonical(query, db.catalog)
        pulled = pull_up(query, "b", ["e1"], db.catalog)
        result = evaluate_canonical(pulled, db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)

    @given(emps=emp_rows, budgets=dept_rows)
    @settings(max_examples=30, deadline=None)
    def test_multi_aggregate_pull_up(self, emps, budgets):
        db = build(emps, budgets)
        query = bind_sql(MULTI_AGG, db.catalog)
        reference = evaluate_canonical(query, db.catalog)
        pulled = pull_up(query, "v", ["d"], db.catalog)
        result = evaluate_canonical(pulled, db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)


class TestInvariantSplitEquivalence:
    @given(emps=emp_rows, budgets=dept_rows)
    @settings(max_examples=40, deadline=None)
    def test_view_with_dept_split(self, emps, budgets):
        db = build(emps, budgets)
        query = bind_sql(VIEW_WITH_DEPT, db.catalog)
        reference = evaluate_canonical(query, db.catalog)
        split = apply_invariant_split(query, db.catalog)
        result = evaluate_canonical(split, db.catalog)
        assert rows_equal_bag(reference.rows, result.rows)

    @given(emps=emp_rows, budgets=dept_rows)
    @settings(max_examples=25, deadline=None)
    def test_split_then_pull_back(self, emps, budgets):
        db = build(emps, budgets)
        query = bind_sql(VIEW_WITH_DEPT, db.catalog)
        reference = evaluate_canonical(query, db.catalog)
        split = apply_invariant_split(query, db.catalog)
        if split.base_tables:
            restored = pull_up(
                split,
                "v",
                [split.base_tables[0].alias],
                db.catalog,
            )
            result = evaluate_canonical(restored, db.catalog)
            assert rows_equal_bag(reference.rows, result.rows)
