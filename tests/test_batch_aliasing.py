"""The zero-copy aliasing contract of :class:`ColumnBatch`
(``engine/batch.py``): batches share column objects freely, so no
operator may mutate a column it received. Projection pruning increases
sharing (more pass-through, fewer gathers), making this hazard class
the one to pin down with regressions."""

from __future__ import annotations

import random

import pytest

from repro import CostParams, Database
from repro.engine.batch import ColumnBatch, ColumnBatchBuilder


def build_db(memory_pages: int = 64) -> Database:
    db = Database(CostParams(memory_pages=memory_pages))
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept",
        [("dno", "int"), ("budget", "float")],
        primary_key=["dno"],
    )
    rng = random.Random(5)
    db.insert(
        "emp",
        [
            (e, e % 9, float(rng.randint(100, 999)), rng.randint(20, 60))
            for e in range(300)
        ],
    )
    db.insert(
        "dept", [(d, float(rng.randint(1_000, 9_000))) for d in range(9)]
    )
    db.analyze()
    return db


def test_project_is_zero_copy_and_batches_own_their_column_lists():
    base = ColumnBatch([[1, 2, 3], [4.0, 5.0, 6.0], ["a", "b", "c"]], 3)
    picked = base.project([2, 0])
    # zero-copy: the column objects are shared...
    assert picked.columns[0] is base.columns[2]
    assert picked.columns[1] is base.columns[0]
    # ...but the column *list* is owned: replacing a downstream slot
    # must never disturb the upstream batch (the one supported form of
    # downstream mutation).
    picked.columns[0] = ["x", "y", "z"]
    assert base.columns[2] == ["a", "b", "c"]
    assert base.to_rows() == [(1, 4.0, "a"), (2, 5.0, "b"), (3, 6.0, "c")]


def test_builder_drain_copies_out_of_the_accumulators():
    builder = ColumnBatchBuilder(size=4, width=2)
    shared = [1, 2, 3]
    builder.extend([shared, [9, 9, 9]], 3)
    batch = builder.drain()
    # the drained batch keeps the accumulator lists; the builder starts
    # fresh ones, so later extends cannot retroactively grow the batch
    builder.extend([[7], [7]], 1)
    assert batch.length == 3
    assert list(batch.columns[0]) == [1, 2, 3]
    # and the builder copied out of the producer's column up front
    shared.append(99)
    assert list(batch.columns[0]) == [1, 2, 3]


QUERIES = [
    # hash join with pass-through projection columns
    "select e.sal, d.budget from emp e, dept d where e.dno = d.dno",
    # residual join (gather + cached-column reuse path)
    "select e.eno from emp e, dept d "
    "where e.dno = d.dno and e.sal > d.budget / 20",
    # group-by over a join (aggregate args computed from shared columns)
    "select d.dno, sum(e.sal) as s from emp e, dept d "
    "where e.dno = d.dno group by d.dno",
    # sort over shared columns (order by must not reorder its input)
    "select e.eno, e.sal from emp e where e.dno < 5 order by e.sal",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_operators_never_mutate_scanned_columns(sql):
    """Scan pages transpose to *tuples*: any operator mutating a
    received column in place (sort/setitem/append) raises immediately.
    Running representative shapes end-to-end proves the engine only
    writes into columns it allocated."""
    db = build_db()
    columnar = db.query(sql)
    reference = db.query(sql, engine="rowexec")
    assert sorted(columnar.rows) == sorted(reference.rows)


def test_execution_leaves_stored_tables_untouched():
    """The sort-merge path collects and sorts rows; a regression that
    sorted a *received* list in place would reorder the heap."""
    db = build_db()
    table = db.catalog.table("emp")
    before = list(table.rows)
    from repro.optimizer.options import OptimizerOptions

    db.query(
        "select e.sal, d.budget from emp e, dept d where e.dno = d.dno",
        options=OptimizerOptions(),
    )
    db.query(
        "select e.dno, count(e.eno) as n from emp e group by e.dno "
        "order by e.dno"
    )
    assert table.rows == before


def test_repeated_execution_is_stable_under_aliasing():
    """Two executions of the same plan must agree — a mutation of a
    shared column during run one would poison run two's input."""
    db = build_db()
    sql = (
        "select e.sal, d.budget from emp e, dept d "
        "where e.dno = d.dno and e.age < 50"
    )
    plan = db.optimize(sql).plan
    first, _ = db.execute_plan(plan)
    second, _ = db.execute_plan(plan)
    assert sorted(first.rows) == sorted(second.rows)
