"""End-to-end tests of the Database facade."""

import pytest

from repro import CostParams, Database, OPTIMIZERS
from repro.engine.reference import rows_equal_bag
from repro.errors import CatalogError, ReproError


@pytest.fixture
def db(emp_dept_db):
    return emp_dept_db


class TestDdl:
    def test_create_table_with_type_names(self):
        database = Database()
        database.create_table("t", [("a", "int"), ("b", "FLOAT")])
        database.insert("t", [(1, 2.0)])
        assert database.catalog.table("t").num_rows == 1

    def test_unknown_type_rejected(self):
        database = Database()
        with pytest.raises(CatalogError):
            database.create_table("t", [("a", "decimal")])

    def test_insert_rebuilds_indexes(self):
        database = Database()
        database.create_table("t", [("a", "int")])
        database.create_index("t_a", "t", ["a"])
        database.insert("t", [(5,), (6,)])
        index = database.catalog.info("t").indexes["t_a"]
        assert index.num_entries == 2

    def test_create_view_and_query_it(self, db):
        db.create_view(
            "avg_by_dept",
            ["dno", "asal"],
            "select e.dno, avg(e.sal) from emp e group by e.dno",
        )
        result = db.query(
            "select v.asal from avg_by_dept v where v.asal > 0"
        )
        assert len(result.rows) == 7


class TestQueryApi:
    SQL = (
        "select e.sal from emp e where e.age < 25 and e.sal > "
        "(select avg(e2.sal) from emp e2 where e2.dno = e.dno)"
    )

    def test_all_optimizers_agree(self, db):
        reference = db.reference(self.SQL)
        for optimizer in OPTIMIZERS:
            result = db.query(self.SQL, optimizer=optimizer)
            assert rows_equal_bag(reference.rows, result.rows), optimizer

    def test_unknown_optimizer(self, db):
        with pytest.raises(ReproError):
            db.query(self.SQL, optimizer="magic")

    def test_result_columns_named(self, db):
        result = db.query("select e.sal, e.age from emp e")
        assert result.columns == ["sal", "age"]

    def test_as_dicts(self, db):
        result = db.query("select e.sal from emp e where e.eno = 0")
        assert result.as_dicts() == [{"sal": result.rows[0][0]}]

    def test_executed_io_positive(self, db):
        result = db.query("select e.sal from emp e")
        assert result.executed_io.total > 0

    def test_execute_false_skips_execution(self, db):
        result = db.query("select e.sal from emp e", execute=False)
        assert result.rows == []
        assert result.executed_io is None
        assert result.estimated_cost > 0

    def test_explain_contains_plan(self, db):
        text = db.explain("select e.sal from emp e where e.dno = 1")
        assert "Scan emp" in text

    def test_optimize_exposes_alternatives(self, db):
        result = db.optimize(
            "with v(dno, a) as (select e.dno, avg(e.sal) from emp e "
            "group by e.dno) "
            "select d.budget from dept d, v where d.dno = v.dno"
        )
        assert result.alternatives

    def test_estimated_matches_executed_on_exact_plans(self, db):
        # no filters, so cardinalities are exact: est IO == executed IO
        result = db.query(
            "select e.dno, avg(e.sal) as a from emp e group by e.dno"
        )
        assert result.executed_io.total == pytest.approx(
            result.estimated_cost
        )

    def test_arithmetic_in_select(self, db):
        result = db.query("select e.sal / 12 as monthly from emp e")
        assert len(result.rows) == 140

    def test_arith_in_aggregate_arg(self, db):
        result = db.query(
            "select e.dno, sum(e.sal * 2) as d from emp e group by e.dno"
        )
        doubled = db.query(
            "select e.dno, sum(e.sal) as s from emp e group by e.dno"
        )
        by_dno = {row[0]: row[1] for row in doubled.rows}
        assert all(
            row[1] == pytest.approx(2 * by_dno[row[0]])
            for row in result.rows
        )

    def test_stddev_user_defined_aggregate(self, db):
        result = db.query(
            "select e.dno, stddev(e.sal) as sd from emp e group by e.dno"
        )
        assert all(row[1] >= 0 for row in result.rows)

    def test_or_predicate(self, db):
        result = db.query(
            "select e.sal from emp e where e.dno = 1 or e.dno = 2"
        )
        assert len(result.rows) == 40

    def test_self_join_same_view_twice(self, db):
        sql = """
        with v(dno, a) as (select e.dno, avg(e.sal) from emp e group by e.dno)
        select x.a, y.a from v x, v y where x.dno = y.dno
        """
        reference = db.reference(sql)
        result = db.query(sql)
        assert rows_equal_bag(reference.rows, result.rows)


class TestIoAccountingSanity:
    def test_io_scales_with_data(self):
        small = Database(CostParams(memory_pages=8))
        big = Database(CostParams(memory_pages=8))
        for database, rows in ((small, 50), (big, 5000)):
            database.create_table(
                "t", [("k", "int"), ("v", "float")], primary_key=["k"]
            )
            database.insert(
                "t", [(i, float(i % 10)) for i in range(rows)]
            )
        sql = "select t.k from t where t.v = 1"
        small_io = small.query(sql).executed_io.total
        big_io = big.query(sql).executed_io.total
        assert big_io > small_io

    def test_repeated_queries_accumulate_io(self, db):
        db.query("select e.sal from emp e")
        before = db.io.total
        db.query("select e.sal from emp e")
        assert db.io.total > before
