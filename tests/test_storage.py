"""Unit tests for storage: pagination, heap tables, indexes, IO."""

import pytest

from repro.catalog.schema import Column
from repro.datatypes import DataType
from repro.errors import SchemaError
from repro.storage import (
    PAGE_SIZE,
    HeapTable,
    IOCounter,
    OrderedIndex,
    pages_for,
    rows_per_page,
)


def make_table(rows=0, name="t"):
    table = HeapTable(
        name,
        [Column("k", DataType.INT), Column("v", DataType.FLOAT)],
    )
    for i in range(rows):
        table.insert((i, float(i % 10)))
    return table


class TestPageMath:
    def test_rows_per_page_positive(self):
        assert rows_per_page(12) == PAGE_SIZE // 20

    def test_rows_per_page_never_zero(self):
        assert rows_per_page(10_000) == 1

    def test_pages_for_empty_is_one(self):
        assert pages_for(0, 12) == 1

    def test_pages_for_exact_boundary(self):
        per = rows_per_page(12)
        assert pages_for(per, 12) == 1
        assert pages_for(per + 1, 12) == 2

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            rows_per_page(-1)


class TestIOCounter:
    def test_counts_reads_and_writes(self):
        io = IOCounter()
        io.read_pages(3)
        io.write_pages(2)
        assert io.page_reads == 3
        assert io.page_writes == 2
        assert io.total == 5

    def test_measure_captures_delta_only(self):
        io = IOCounter()
        io.read_pages(10)
        with io.measure() as span:
            io.read_pages(4)
            io.write_pages(1)
        assert span.delta.page_reads == 4
        assert span.delta.page_writes == 1
        assert span.delta.total == 5

    def test_reset(self):
        io = IOCounter()
        io.read_pages(5)
        io.reset()
        assert io.total == 0

    def test_snapshot_subtraction(self):
        io = IOCounter()
        first = io.snapshot()
        io.read_pages(2)
        assert (io.snapshot() - first).page_reads == 2


class TestHeapTable:
    def test_insert_validates_arity(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.insert((1,))

    def test_insert_validates_types(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.insert(("x", 1.0))

    def test_insert_converts_int_to_float(self):
        table = make_table()
        table.insert((1, 2))
        assert table.rows[0] == (1, 2.0)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            HeapTable(
                "bad",
                [Column("x", DataType.INT), Column("x", DataType.INT)],
            )

    def test_page_count_grows_with_rows(self):
        small = make_table(rows=10)
        big = make_table(rows=5000)
        assert big.num_pages > small.num_pages

    def test_scan_charges_one_read_per_page(self):
        table = make_table(rows=1000)
        io = IOCounter()
        rows = list(table.scan(io))
        assert len(rows) == 1000
        assert io.page_reads == table.num_pages

    def test_empty_scan_charges_header_page(self):
        table = make_table()
        io = IOCounter()
        assert list(table.scan(io)) == []
        assert io.page_reads == 1

    def test_scan_with_rid_appends_position(self):
        table = make_table(rows=5)
        io = IOCounter()
        rows = list(table.scan(io, include_rid=True))
        assert [row[-1] for row in rows] == [0, 1, 2, 3, 4]

    def test_fetch_charges_page_unless_cached(self):
        table = make_table(rows=1000)
        io = IOCounter()
        row, page = table.fetch(io, 0)
        assert io.page_reads == 1
        # same page again, hint supplied: no charge
        table.fetch(io, 1, last_page=page)
        assert io.page_reads == 1
        # a distant rid: new charge
        table.fetch(io, 999, last_page=page)
        assert io.page_reads == 2

    def test_fetch_out_of_range(self):
        table = make_table(rows=3)
        with pytest.raises(SchemaError):
            table.fetch(IOCounter(), 3)


class TestOrderedIndex:
    def test_lookup_finds_all_matches(self):
        table = make_table(rows=100)
        index = OrderedIndex("t_v", table, ["v"])
        io = IOCounter()
        rids = index.lookup_rids(io, (3.0,))
        assert len(rids) == 10
        assert all(table.rows[rid][1] == 3.0 for rid in rids)

    def test_lookup_miss_returns_empty_but_charges_traversal(self):
        table = make_table(rows=100)
        index = OrderedIndex("t_v", table, ["v"])
        io = IOCounter()
        assert index.lookup_rids(io, (99.0,)) == []
        assert io.page_reads >= 1

    def test_lookup_rows_fetches_data_pages(self):
        table = make_table(rows=2000)
        index = OrderedIndex("t_v", table, ["v"])
        io = IOCounter()
        rows = list(index.lookup_rows(io, (7.0,)))
        assert len(rows) == 200
        # traversal + leaves + data pages; strictly more than a miss
        assert io.page_reads > index.height

    def test_range_rids(self):
        table = make_table(rows=50)
        index = OrderedIndex("t_k", table, ["k"])
        io = IOCounter()
        rids = index.range_rids(io, low=(10,), high=(19,))
        assert sorted(table.rows[r][0] for r in rids) == list(range(10, 20))

    def test_range_open_bounds(self):
        table = make_table(rows=20)
        index = OrderedIndex("t_k", table, ["k"])
        io = IOCounter()
        assert len(index.range_rids(io)) == 20

    def test_build_refreshes_after_insert(self):
        table = make_table(rows=10)
        index = OrderedIndex("t_k", table, ["k"])
        table.insert((100, 1.0))
        index.build()
        io = IOCounter()
        assert index.lookup_rids(io, (100,)) == [10]

    def test_multi_column_key(self):
        table = make_table(rows=30)
        index = OrderedIndex("t_kv", table, ["v", "k"])
        io = IOCounter()
        rids = index.lookup_rids(io, (3.0, 13))
        assert len(rids) == 1
        assert table.rows[rids[0]] == (13, 3.0)

    def test_empty_column_list_rejected(self):
        with pytest.raises(SchemaError):
            OrderedIndex("bad", make_table(), [])
