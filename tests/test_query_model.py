"""Unit tests for query blocks, views, canonical queries, equivalence."""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import ColumnRef, Comparison, col, lit
from repro.algebra.query import (
    AggregateView,
    CanonicalQuery,
    EquivalenceClasses,
    QueryBlock,
    TableRef,
    predicates_crossing,
    predicates_within,
    rename_block_aliases,
)
from repro.errors import BindError, PlanError


def simple_view_block():
    return QueryBlock(
        relations=(TableRef("emp", "e"),),
        group_by=(col("e.dno"),),
        aggregates=(("asal", AggregateCall("avg", col("e.sal"))),),
        select=(("dno", col("e.dno")), ("asal", col("asal"))),
    )


class TestQueryBlock:
    def test_requires_relations(self):
        with pytest.raises(PlanError):
            QueryBlock(relations=())

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(PlanError):
            QueryBlock(
                relations=(TableRef("emp", "e"), TableRef("dept", "e"))
            )

    def test_having_requires_group_by(self):
        with pytest.raises(PlanError):
            QueryBlock(
                relations=(TableRef("emp", "e"),),
                having=(Comparison(">", col("x"), lit(1)),),
            )

    def test_aggregates_require_group_by(self):
        with pytest.raises(PlanError):
            QueryBlock(
                relations=(TableRef("emp", "e"),),
                aggregates=(("s", AggregateCall("sum", col("e.sal"))),),
            )

    def test_aliases(self):
        block = QueryBlock(
            relations=(TableRef("emp", "e"), TableRef("dept", "d"))
        )
        assert block.aliases == {"e", "d"}

    def test_validate_accepts_legal_grouped_block(self):
        simple_view_block().validate()

    def test_validate_rejects_nongrouped_select(self):
        block = QueryBlock(
            relations=(TableRef("emp", "e"),),
            group_by=(col("e.dno"),),
            aggregates=(("s", AggregateCall("sum", col("e.sal"))),),
            select=(("sal", col("e.sal")),),  # not a grouping column
        )
        with pytest.raises(BindError):
            block.validate()

    def test_validate_rejects_unknown_alias_in_where(self):
        block = QueryBlock(
            relations=(TableRef("emp", "e"),),
            predicates=(Comparison("=", col("zz.x"), lit(1)),),
        )
        with pytest.raises(BindError):
            block.validate()

    def test_validate_rejects_bad_having(self):
        block = QueryBlock(
            relations=(TableRef("emp", "e"),),
            group_by=(col("e.dno"),),
            aggregates=(("s", AggregateCall("sum", col("e.sal"))),),
            having=(Comparison(">", col("e.sal"), lit(1)),),
            select=(("dno", col("e.dno")),),
        )
        with pytest.raises(BindError):
            block.validate()

    def test_aggregate_output_keys(self):
        block = simple_view_block()
        assert block.aggregate_output_keys() == {(None, "asal")}


class TestAggregateView:
    def test_rejects_ungrouped_block(self):
        with pytest.raises(PlanError):
            AggregateView(
                alias="v",
                block=QueryBlock(relations=(TableRef("emp", "e"),)),
            )

    def test_output_names_and_sources(self):
        view = AggregateView(alias="v", block=simple_view_block())
        assert view.output_names == ("dno", "asal")
        assert view.output_source("dno") == col("e.dno")

    def test_unknown_output(self):
        view = AggregateView(alias="v", block=simple_view_block())
        with pytest.raises(BindError):
            view.output_source("zzz")

    def test_aggregated_outputs(self):
        view = AggregateView(alias="v", block=simple_view_block())
        assert view.aggregated_outputs() == {"asal"}


class TestCanonicalQuery:
    def test_needs_some_relation(self):
        with pytest.raises(PlanError):
            CanonicalQuery()

    def test_alias_clash_between_table_and_view(self):
        view = AggregateView(alias="x", block=simple_view_block())
        with pytest.raises(PlanError):
            CanonicalQuery(
                base_tables=(TableRef("emp", "x"),), views=(view,)
            )

    def test_view_lookup(self):
        view = AggregateView(alias="v", block=simple_view_block())
        query = CanonicalQuery(views=(view,))
        assert query.view("v") is view
        with pytest.raises(BindError):
            query.view("w")

    def test_aliases_union(self):
        view = AggregateView(alias="v", block=simple_view_block())
        query = CanonicalQuery(
            base_tables=(TableRef("dept", "d"),), views=(view,)
        )
        assert query.aliases == {"d", "v"}
        assert query.view_aliases == {"v"}


class TestEquivalenceClasses:
    def test_transitive_union(self):
        eq = EquivalenceClasses(
            [
                Comparison("=", col("a.x"), col("b.y")),
                Comparison("=", col("b.y"), col("c.z")),
            ]
        )
        assert eq.equivalent(("a", "x"), ("c", "z"))

    def test_non_equijoins_ignored(self):
        eq = EquivalenceClasses([Comparison("<", col("a.x"), col("b.y"))])
        assert not eq.equivalent(("a", "x"), ("b", "y"))

    def test_representative_in(self):
        eq = EquivalenceClasses([Comparison("=", col("a.x"), col("b.y"))])
        assert eq.representative_in(("a", "x"), frozenset({"b"})) == ("b", "y")
        assert eq.representative_in(("a", "x"), frozenset({"a"})) == ("a", "x")
        assert eq.representative_in(("a", "x"), frozenset({"z"})) is None


class TestPredicateScoping:
    def predicates(self):
        return (
            Comparison("=", col("a.x"), col("b.y")),
            Comparison("<", col("a.x"), lit(5)),
            Comparison("=", col("b.y"), col("c.z")),
        )

    def test_predicates_within(self):
        within = predicates_within(self.predicates(), frozenset({"a", "b"}))
        assert len(within) == 2

    def test_predicates_crossing(self):
        crossing = predicates_crossing(
            self.predicates(), frozenset({"a"}), frozenset({"b"})
        )
        assert len(crossing) == 1


class TestRenameBlockAliases:
    def test_renames_everywhere(self):
        block = QueryBlock(
            relations=(TableRef("emp", "e"), TableRef("dept", "d")),
            predicates=(Comparison("=", col("e.dno"), col("d.dno")),),
            group_by=(col("e.dno"),),
            aggregates=(("s", AggregateCall("sum", col("e.sal"))),),
            having=(Comparison(">", col("s"), lit(1)),),
            select=(("dno", col("e.dno")), ("s", col("s"))),
        )
        renamed = rename_block_aliases(block, {"e": "v__e", "d": "v__d"})
        assert renamed.aliases == {"v__e", "v__d"}
        assert renamed.predicates[0].columns() == {
            ("v__e", "dno"),
            ("v__d", "dno"),
        }
        assert renamed.group_by[0].key == ("v__e", "dno")
        assert renamed.aggregates[0][1].columns() == {("v__e", "sal")}
        # select sources follow; unqualified aggregate refs untouched
        assert renamed.select[0][1].key == ("v__e", "dno")
        assert renamed.select[1][1].key == (None, "s")
