"""Error-path tests: the library must fail loudly and precisely."""

import pytest

from repro import Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.plan import GroupByNode, JoinNode, PlanNode, ScanNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.errors import (
    BindError,
    ExecutionError,
    PlanError,
    ReproError,
    SchemaError,
    SqlSyntaxError,
    TransformError,
    UnsupportedFeatureError,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error_type in (
            BindError,
            ExecutionError,
            PlanError,
            SchemaError,
            SqlSyntaxError,
            TransformError,
            UnsupportedFeatureError,
        ):
            assert issubclass(error_type, ReproError)

    def test_syntax_error_location_formatting(self):
        error = SqlSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7


class TestExecutionErrors:
    def test_unknown_plan_node(self, emp_dept_db):
        class Bogus(PlanNode):
            @property
            def schema(self):
                raise NotImplementedError

            @property
            def children(self):
                return ()

            def describe(self):
                return "Bogus"

        context = ExecutionContext(
            emp_dept_db.catalog, emp_dept_db.io, emp_dept_db.params
        )
        with pytest.raises(ExecutionError):
            execute_plan(Bogus(), context)

    def test_inlj_requires_base_inner_at_execution(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        grouped = GroupByNode(
            ScanNode("emp", "x", table_row_schema("x", emp_columns).fields),
            group_keys=[("x", "dno")],
            aggregates=[("a", AggregateCall("avg", col("x.sal")))],
        )
        join = JoinNode(
            ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
            grouped,
            method="inlj",
            equi_keys=[(("e", "dno"), ("x", "dno"))],
            index_name="emp_dno_idx",
        )
        context = ExecutionContext(
            emp_dept_db.catalog, emp_dept_db.io, emp_dept_db.params
        )
        with pytest.raises(ExecutionError):
            execute_plan(join, context)

    def test_inlj_index_must_cover_join_columns(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        join = JoinNode(
            ScanNode("emp", "a", table_row_schema("a", emp_columns).fields),
            ScanNode("emp", "b", table_row_schema("b", emp_columns).fields),
            method="inlj",
            equi_keys=[(("a", "sal"), ("b", "sal"))],  # index is on dno
            index_name="emp_dno_idx",
        )
        context = ExecutionContext(
            emp_dept_db.catalog, emp_dept_db.io, emp_dept_db.params
        )
        with pytest.raises(ExecutionError):
            execute_plan(join, context)


class TestCostModelErrors:
    def test_annotate_requires_annotated_children(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        join = JoinNode(
            ScanNode("emp", "a", table_row_schema("a", emp_columns).fields),
            ScanNode("emp", "b", table_row_schema("b", emp_columns).fields),
            method="hj",
            equi_keys=[(("a", "dno"), ("b", "dno"))],
        )
        model = CostModel(emp_dept_db.catalog, emp_dept_db.params)
        with pytest.raises(PlanError):
            model.annotate(join)  # children not annotated

    def test_sorted_group_by_requires_order(self, emp_dept_db):
        emp_columns = emp_dept_db.catalog.table("emp").columns
        scan = ScanNode(
            "emp", "e", table_row_schema("e", emp_columns).fields
        )
        group = GroupByNode(
            scan,
            group_keys=[("e", "dno")],
            aggregates=[("a", AggregateCall("avg", col("e.sal")))],
            method="sort",
        )
        model = CostModel(emp_dept_db.catalog, emp_dept_db.params)
        model.annotate(scan)
        with pytest.raises(PlanError):
            model.annotate(group)  # heap scan has no order


class TestFacadeErrors:
    def test_view_name_clash(self, emp_dept_db):
        emp_dept_db.create_view(
            "myview", ["d", "a"],
            "select e.dno, avg(e.sal) from emp e group by e.dno",
        )
        with pytest.raises(ReproError):
            emp_dept_db.create_view(
                "myview", ["d", "a"],
                "select e.dno, avg(e.sal) from emp e group by e.dno",
            )

    def test_view_over_view_rejected(self, emp_dept_db):
        emp_dept_db.create_view(
            "base_view", ["d", "a"],
            "select e.dno, avg(e.sal) from emp e group by e.dno",
        )
        with pytest.raises(UnsupportedFeatureError):
            emp_dept_db.query(
                "with v2(x) as (select b.a from base_view b group by b.a) "
                "select v2.x from v2"
            )

    def test_insert_into_missing_table(self, emp_dept_db):
        with pytest.raises(ReproError):
            emp_dept_db.insert("nope", [(1,)])

    def test_null_rejected_at_load(self, emp_dept_db):
        with pytest.raises(SchemaError):
            emp_dept_db.insert("dept", [(99, None, 0)])

    def test_query_on_empty_table_is_fine(self):
        db = Database()
        db.create_table("t", [("a", "int")])
        result = db.query("select t.a from t")
        assert result.rows == []


class TestTransformErrors:
    def test_pull_unknown_view(self, emp_dept_db):
        from repro.sql import bind_sql
        from repro.transforms import pull_up

        query = bind_sql(
            "with v(d, a) as (select e.dno, avg(e.sal) from emp e "
            "group by e.dno) select v.a from v",
            emp_dept_db.catalog,
        )
        # an empty pull set is a no-op regardless of the alias
        assert pull_up(query, "nosuchview", [], emp_dept_db.catalog) is query
        with pytest.raises(BindError):
            pull_up(query, "nosuchview", ["x"], emp_dept_db.catalog)

    def test_pull_nonexistent_base_alias(self, emp_dept_db):
        from repro.sql import bind_sql
        from repro.transforms import pull_up

        query = bind_sql(
            "with v(d, a) as (select e.dno, avg(e.sal) from emp e "
            "group by e.dno) select v.a from v",
            emp_dept_db.catalog,
        )
        with pytest.raises(TransformError):
            pull_up(query, "v", ["ghost"], emp_dept_db.catalog)


class TestFuzzErrors:
    """The fuzzing subsystem fails loudly on bad inputs too."""

    def test_unknown_profile(self):
        from repro.testing import FuzzConfigError, run_fuzz
        from repro.testing.runner import resolve_profile

        with pytest.raises(FuzzConfigError, match="unknown fuzz profile"):
            resolve_profile("warp-speed")
        with pytest.raises(FuzzConfigError):
            run_fuzz(seeds=1, profile="warp-speed")

    def test_bad_seed_count(self):
        from repro.testing import FuzzConfigError, run_fuzz

        with pytest.raises(FuzzConfigError, match="seeds"):
            run_fuzz(seeds=0)

    def test_fuzz_config_error_is_repro_error(self):
        from repro.testing import FuzzConfigError, OracleError

        assert issubclass(FuzzConfigError, ReproError)
        assert issubclass(OracleError, ReproError)

    def test_oracle_rejects_unknown_statement_kind(self):
        from repro.testing import OracleError, SqliteOracle
        from repro.testing.sqlgen import Stmt

        oracle = SqliteOracle()
        try:
            with pytest.raises(OracleError, match="cannot replay"):
                oracle.apply(Stmt("vacuum", "vacuum"))
        finally:
            oracle.close()

    def test_oracle_rejects_malformed_create(self):
        from repro.testing import OracleError, SqliteOracle
        from repro.testing.sqlgen import Stmt

        oracle = SqliteOracle()
        try:
            with pytest.raises(OracleError):
                oracle.apply(Stmt("create", "create garbage"))
        finally:
            oracle.close()

    def test_oracle_surfaces_sqlite_errors(self):
        from repro.testing import OracleError, SqliteOracle
        from repro.testing.sqlgen import Stmt

        oracle = SqliteOracle()
        try:
            with pytest.raises(OracleError, match="failed on insert"):
                oracle.apply(
                    Stmt("insert", "insert into ghost values (1)")
                )
            with pytest.raises(OracleError, match="failed on query"):
                oracle.query("select nothing from nowhere")
        finally:
            oracle.close()

    def test_oracle_failure_becomes_divergence_not_crash(self):
        """A statement SQLite rejects must surface as an oracle-error
        divergence; the harness itself must not raise."""
        from repro.testing import check_script
        from repro.testing.sqlgen import Stmt

        script = [
            Stmt("create", "create table t (a int)"),
            # valid for the engine replay, but duplicated for SQLite
            Stmt("create", "create table t (a int)"),
            Stmt("query", "select t.a as x from t t"),
        ]
        report = check_script(script)
        kinds = {d.kind for d in report.divergences}
        assert kinds  # duplicate create fails everywhere, loudly
