"""Unit tests for the compiled columnar kernels.

The kernels must reproduce the row engine's semantics exactly, so every
selection/compute test is differential: the generated kernel's output
against the bound-closure evaluation of the same expressions over the
same (NULL-bearing) data. Group-by kernels are checked per aggregate
kind, and the executor-level tests pin the observability surface: the
``kernels_compiled`` counter, the source cache, and the ``fused``
markers in ``explain(analyze=True)``.
"""

import random
from types import SimpleNamespace

import pytest

from repro import CostParams, Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import (
    And,
    Arith,
    Comparison,
    IsNull,
    Not,
    Or,
    col,
    lit,
)
from repro.algebra.plan import FilterNode, ProjectNode, ScanNode, explain
from repro.catalog.schema import Field, RowSchema, table_row_schema
from repro.datatypes import DataType
from repro.engine import ColumnBatch, ExecutionContext, execute_plan
from repro.engine.batch import filtered, take
from repro.engine.kernels import (
    _SOURCE_CACHE,
    ComputeProgram,
    SelectionProgram,
    groupby_kernels,
)

SCHEMA = RowSchema(
    [
        Field("t", "a", DataType.INT),
        Field("t", "b", DataType.FLOAT),
        Field("t", "c", DataType.INT),
    ]
)


def make_columns(n=500, seed=11):
    """Three columns with NULLs mixed into ``a`` and ``b``."""
    rng = random.Random(seed)
    a = [rng.randrange(20) if rng.random() > 0.2 else None for _ in range(n)]
    b = [
        round(rng.random() * 10, 3) if rng.random() > 0.2 else None
        for _ in range(n)
    ]
    c = [rng.randrange(5) for _ in range(n)]
    return [a, b, c]


PREDICATES = [
    Comparison("<", col("t.a"), lit(10)),
    Comparison("=", col("t.c"), lit(3)),
    Comparison("!=", col("t.a"), col("t.c")),
    Comparison(">=", col("t.b"), col("t.a")),
    Comparison("=", col("t.a"), lit(None)),  # UNKNOWN: keeps nothing
    IsNull(col("t.a")),
    IsNull(col("t.b"), negate=True),
    Not(Comparison("<", col("t.a"), lit(10))),
    And([Comparison("<", col("t.a"), lit(15)), IsNull(col("t.b"))]),
    Or([Comparison(">", col("t.a"), lit(18)), Comparison("=", col("t.c"), lit(0))]),
    Not(And([IsNull(col("t.a")), IsNull(col("t.b"))])),
    Or([Not(IsNull(col("t.a"))), Comparison("<", col("t.c"), lit(2))]),
    Comparison("<", Arith("+", col("t.a"), col("t.b")), lit(12.0)),
    Comparison(">", Arith("*", col("t.a"), lit(2)), Arith("-", col("t.b"), lit(1.0))),
    Comparison("=", lit(1), lit(1)),  # constant TRUE: all rows pass
    Comparison("=", lit(1), lit(2)),  # constant FALSE: none pass
]


def closure_selection(predicates, columns):
    """The row engine's answer: bind each predicate, keep TRUE rows."""
    checks = [predicate.bind(SCHEMA) for predicate in predicates]
    rows = list(zip(*columns))
    return [
        i
        for i, row in enumerate(rows)
        if all(check(row) for check in checks)
    ]


class TestSelectionKernels:
    @pytest.mark.parametrize("index", range(len(PREDICATES)))
    def test_single_predicate_matches_closures(self, index):
        predicate = PREDICATES[index]
        columns = make_columns()
        n = len(columns[0])
        program = SelectionProgram([predicate], SCHEMA)
        sel = program.run(columns, n)
        expected = closure_selection([predicate], columns)
        got = list(range(n)) if sel is None else sel
        assert got == expected

    def test_conjunction_matches_closures(self):
        columns = make_columns(seed=5)
        n = len(columns[0])
        predicates = PREDICATES[:4]
        program = SelectionProgram(predicates, SCHEMA)
        sel = program.run(columns, n)
        expected = closure_selection(predicates, columns)
        got = list(range(n)) if sel is None else sel
        assert got == expected

    def test_all_pass_returns_none(self):
        columns = [[1, 2, 3], [1.0, 2.0, 3.0], [0, 0, 0]]
        program = SelectionProgram(
            [Comparison("<", col("t.a"), lit(99))], SCHEMA
        )
        assert program.run(columns, 3) is None

    def test_inactive_program(self):
        program = SelectionProgram([], SCHEMA)
        assert not program.active
        assert program.run(make_columns(), 500) is None

    def test_used_positions(self):
        program = SelectionProgram(
            [Comparison("<", col("t.a"), lit(10)), IsNull(col("t.c"))],
            SCHEMA,
        )
        assert program.used == (0, 2)


class TestComputeKernels:
    def test_column_pick_is_zero_copy(self):
        columns = make_columns()
        program = ComputeProgram([col("t.c"), col("t.a")], SCHEMA)
        out = program.run(columns, len(columns[0]))
        assert out[0] is columns[2]
        assert out[1] is columns[0]

    def test_arith_with_nulls_matches_closures(self):
        columns = make_columns(seed=7)
        n = len(columns[0])
        expressions = [
            Arith("+", col("t.a"), col("t.b")),
            Arith("*", col("t.b"), lit(3.0)),
            Arith("-", lit(100), col("t.a")),
        ]
        program = ComputeProgram(expressions, SCHEMA)
        out = program.run(columns, n)
        rows = list(zip(*columns))
        for position, expression in enumerate(expressions):
            evaluate = expression.bind(SCHEMA)
            assert list(out[position]) == [evaluate(row) for row in rows]

    def test_fallback_expression_matches_closures(self):
        # Kleene logic as a *value* has no source form: the kernel
        # compiler must fall back to the bound closure for that output
        # without disturbing the compiled ones
        columns = make_columns(seed=9)
        n = len(columns[0])
        exotic = And([IsNull(col("t.a")), Comparison("<", col("t.c"), lit(3))])
        program = ComputeProgram([col("t.c"), exotic], SCHEMA)
        out = program.run(columns, n)
        evaluate = exotic.bind(SCHEMA)
        assert out[0] is columns[2]
        assert list(out[1]) == [evaluate(row) for row in list(zip(*columns))]

    def test_constant_output_and_empty_batch(self):
        program = ComputeProgram([Arith("+", lit(2), lit(3))], SCHEMA)
        out = program.run([[], [], []], 0)
        assert out[0] == []
        out = program.run(make_columns(n=4), 4)
        assert list(out[0]) == [5, 5, 5, 5]


class TestGroupByKernels:
    KINDS = [
        ("count", AggregateCall("count", col("t.a"))),
        ("count*", AggregateCall("count", None)),
        ("sum", AggregateCall("sum", col("t.b"))),
        ("min", AggregateCall("min", col("t.a"))),
        ("max", AggregateCall("max", col("t.a"))),
        ("avg", AggregateCall("avg", col("t.b"))),
        ("stddev", AggregateCall("stddev", col("t.b"))),
    ]

    @pytest.mark.parametrize("kind,call", KINDS, ids=[k for k, _ in KINDS])
    def test_each_aggregate_matches_accumulators(self, kind, call):
        columns = make_columns(seed=13)
        keys = columns[2]
        argument = (
            [None] * len(keys)
            if call.arg is None
            else columns[SCHEMA.index_of("t", call.arg.name)]
        )
        update, finalize = groupby_kernels(1, [("x", call)])
        table = {}
        update([keys], {0: argument}, table)
        out = finalize(table.items())

        expected = {}
        for key, value in zip(keys, argument):
            accumulator = expected.setdefault(
                key, call.function().make_accumulator()
            )
            accumulator.add(value if call.arg is not None else True)
        assert list(out[0]) == list(expected.keys())
        for position, key in enumerate(expected):
            assert out[1][position] == pytest.approx(
                expected[key].value(), nan_ok=True
            )

    def test_sum_bit_identity_negative_zero(self):
        # SUM starts from integer 0 exactly like the accumulator, so a
        # group summing to -0.0 keeps the same sign bit in both engines
        update, finalize = groupby_kernels(
            1, [("s", AggregateCall("sum", col("t.b")))]
        )
        table = {}
        update([[1, 1]], {0: [[-0.0][0], 0.0]}, table)
        out = finalize(table.items())
        import math

        accumulator = AggregateCall(
            "sum", col("t.b")
        ).function().make_accumulator()
        accumulator.add(-0.0)
        accumulator.add(0.0)
        assert math.copysign(1.0, out[1][0]) == math.copysign(
            1.0, accumulator.value()
        )

    def test_multi_key_grouping(self):
        update, finalize = groupby_kernels(
            2, [("n", AggregateCall("count", None))]
        )
        table = {}
        update([[1, 1, 2], ["x", "x", "y"]], {}, table)
        out = finalize(table.items())
        assert list(out[0]) == [1, 2]
        assert list(out[1]) == ["x", "y"]
        assert list(out[2]) == [2, 1]


class TestKernelCompilationCache:
    def test_same_shape_compiles_once(self):
        # different constants, same expression shape → same source text,
        # so the code-object cache must not grow on the second build
        SelectionProgram([Comparison("<", col("t.a"), lit(123))], SCHEMA)
        before = len(_SOURCE_CACHE)
        SelectionProgram([Comparison("<", col("t.a"), lit(456))], SCHEMA)
        assert len(_SOURCE_CACHE) == before

    def test_kernels_compiled_counts_instantiations(self):
        context = SimpleNamespace(kernels_compiled=0)
        SelectionProgram(
            [Comparison("<", col("t.a"), lit(1))], SCHEMA, context
        )
        SelectionProgram(
            [Comparison("<", col("t.a"), lit(2))], SCHEMA, context
        )
        groupby_kernels(1, [("n", AggregateCall("count", None))], context)
        # two selections + update/finalize pair: cached source still
        # counts — the counter tracks kernels built, not code compiled
        assert context.kernels_compiled == 4


@pytest.fixture
def small_db():
    db = Database(CostParams(memory_pages=16))
    db.create_table(
        "s", [("k", "int"), ("v", "float")], primary_key=["k"]
    )
    db.insert("s", [(i, float(i % 7)) for i in range(300)])
    db.analyze()
    return db


def _scan(db, table, alias, filters=()):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
        filters=filters,
    )


class TestFusedChainObservability:
    def plan(self, db):
        return ProjectNode(
            FilterNode(
                _scan(db, "s", "e"),
                [Comparison("<", col("e.v"), lit(5.0))],
            ),
            [(None, "doubled", Arith("*", col("e.v"), lit(2.0)))],
        )

    def test_explain_analyze_marks_fused_operators(self, small_db):
        plan = self.plan(small_db)
        context = ExecutionContext(
            small_db.catalog, small_db.io, small_db.params
        )
        result = execute_plan(plan, context)
        text = explain(plan, analyze=True)
        assert "fused" in text
        # per-operator actuals survive fusion
        assert plan.op_metrics.rows_out == len(result.rows)
        assert plan.child.op_metrics is not None
        assert plan.child.op_metrics.rows_out == len(result.rows)
        assert plan.child.child.op_metrics.batches > 0

    def test_fused_chain_compiles_kernels(self, small_db):
        plan = self.plan(small_db)
        context = ExecutionContext(
            small_db.catalog, small_db.io, small_db.params
        )
        execute_plan(plan, context)
        assert context.kernels_compiled >= 2  # selection + compute

    def test_rows_engine_matches_columnar_on_fused_chain(self, small_db):
        plan = self.plan(small_db)
        columnar = execute_plan(
            plan,
            ExecutionContext(
                small_db.catalog, small_db.io, small_db.params
            ),
        )
        rows_engine = execute_plan(
            self.plan(small_db),
            ExecutionContext(
                small_db.catalog,
                small_db.io,
                small_db.params,
                engine="rows",
            ),
        )
        assert columnar.rows == rows_engine.rows


class TestColumnBatchHelpers:
    def test_project_is_zero_copy(self):
        batch = ColumnBatch([[1, 2], [3.0, 4.0], ["x", "y"]], 2)
        projected = batch.project([2, 0])
        assert projected.columns[0] is batch.columns[2]
        assert projected.columns[1] is batch.columns[0]

    def test_take_gathers_each_column(self):
        batch = ColumnBatch([[10, 20, 30], ["a", "b", "c"]], 3)
        taken = batch.take([2, 0])
        assert taken.length == 2
        assert list(taken.columns[0]) == [30, 10]
        assert list(taken.columns[1]) == ["c", "a"]

    def test_take_helper_edge_cases(self):
        column = [5, 6, 7]
        assert take(column, []) == ()
        assert take(column, [1]) == (6,)
        assert list(take(column, [2, 0, 1])) == [7, 5, 6]

    def test_filtered_single_pass_multi_checks(self):
        rows = [(i, i % 3) for i in range(30)]
        checks2 = [lambda r: r[0] > 5, lambda r: r[1] == 0]
        checks3 = checks2 + [lambda r: r[0] < 25]
        checks4 = checks3 + [lambda r: r[0] != 12]
        for checks in (checks2[:1], checks2, checks3, checks4):
            expected = [
                row for row in rows if all(check(row) for check in checks)
            ]
            assert filtered(list(rows), checks) == expected
