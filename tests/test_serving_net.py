"""The line-protocol server and client, end to end over loopback."""

from __future__ import annotations

import threading

import pytest

from repro import Database
from repro.errors import ReproError
from repro.server.net import (
    LineClient,
    ServerThread,
    decode_value,
    encode_value,
)


@pytest.fixture
def server(emp_dept_db):
    with ServerThread(emp_dept_db, port=0) as thread:
        yield thread


class TestWireEncoding:
    def test_roundtrip(self):
        for value in ("plain", "tab\there", "line\nbreak", "back\\slash",
                      "quote'mix", ""):
            assert decode_value(encode_value(value)) == value

    def test_null(self):
        assert encode_value(None) == "\\N"
        assert decode_value("\\N") is None
        # A literal backslash-N string survives (it encodes escaped).
        assert decode_value(encode_value("\\N")) == "\\N"

    def test_values_are_single_line(self):
        assert "\n" not in encode_value("a\nb")
        assert "\t" not in encode_value("a\tb")


class TestServerRoundtrip:
    def test_query(self, server):
        with server.client() as client:
            columns, rows = client.execute(
                "SELECT dno, COUNT(*) AS c FROM emp GROUP BY dno"
            )
        assert columns == ["dno", "c"]
        assert sum(int(c) for _, c in rows) == 140

    def test_ddl_insert_query(self, server):
        with server.client() as client:
            assert client.execute("CREATE TABLE kv (k int, v text)") == (
                [],
                [],
            )
            client.execute("INSERT INTO kv VALUES (1, 'one'), (2, 'two')")
            columns, rows = client.execute(
                "SELECT k.k, k.v FROM kv k ORDER BY k"
            )
        assert columns == ["k", "v"]
        assert rows == [("1", "one"), ("2", "two")]

    def test_empty_result_set(self, server):
        with server.client() as client:
            columns, rows = client.execute(
                "SELECT e.eno FROM emp e WHERE e.age > 1000"
            )
        assert columns == ["eno"]
        assert rows == []

    def test_error_reported_not_fatal(self, server):
        with server.client() as client:
            with pytest.raises(ReproError, match="unknown table"):
                client.execute("SELECT x.a FROM missing x")
            # The connection survives the error.
            columns, _ = client.execute("SELECT e.eno FROM emp e")
            assert columns == ["eno"]

    def test_prepare_execute_over_wire(self, server):
        with server.client() as client:
            client.execute(
                "PREPARE by_dno AS SELECT dno, COUNT(*) AS c FROM emp "
                "WHERE dno = $1 GROUP BY dno"
            )
            _, direct = client.execute(
                "SELECT dno, COUNT(*) AS c FROM emp "
                "WHERE dno = 3 GROUP BY dno"
            )
            _, prepared = client.execute("EXECUTE by_dno(3)")
            client.execute("DEALLOCATE by_dno")
        assert prepared == direct

    def test_null_over_wire(self, server):
        with server.client() as client:
            client.execute("CREATE TABLE opt (id int, note text null)")
            client.execute("INSERT INTO opt VALUES (1, NULL)")
            _, rows = client.execute("SELECT o.id, o.note FROM opt o")
        assert rows == [("1", None)]

    def test_concurrent_clients(self, server):
        results = []
        errors = []

        def worker():
            try:
                with server.client() as client:
                    for _ in range(10):
                        _, rows = client.execute(
                            "SELECT dno, COUNT(*) AS c FROM emp "
                            "GROUP BY dno"
                        )
                        results.append(sum(int(c) for _, c in rows))
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert results == [140] * 40

    def test_sessions_tracked_per_connection(self, emp_dept_db):
        with ServerThread(emp_dept_db, port=0) as thread:
            opened_before = emp_dept_db.sessions_opened
            with thread.client() as one, thread.client() as two:
                one.execute("SELECT e.eno FROM emp e")
                two.execute("SELECT e.eno FROM emp e")
            assert emp_dept_db.sessions_opened >= opened_before + 2

    def test_plan_cache_disabled_server(self, emp_dept_db):
        with ServerThread(
            emp_dept_db, port=0, use_plan_cache=False
        ) as thread:
            with thread.client() as client:
                client.execute("SELECT e.eno FROM emp e")
                client.execute("SELECT e.eno FROM emp e")
        assert len(emp_dept_db.plan_cache) == 0
