"""Unit tests for scalar expressions: evaluation, analysis, rewriting."""

import pytest

from repro.algebra.expressions import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Not,
    Or,
    and_all,
    col,
    comparison_with_literal,
    conjuncts,
    equijoin_sides,
    lit,
)
from repro.catalog import Field, RowSchema
from repro.datatypes import DataType
from repro.errors import PlanError, SchemaError


SCHEMA = RowSchema(
    [
        Field("e", "dno", DataType.INT),
        Field("e", "sal", DataType.FLOAT),
        Field(None, "asal", DataType.FLOAT),
    ]
)
ROW = (3, 50.0, 40.0)


def evaluate(expression, row=ROW, schema=SCHEMA):
    return expression.bind(schema)(row)


class TestEvaluation:
    def test_column_ref(self):
        assert evaluate(col("e.sal")) == 50.0

    def test_unqualified_column(self):
        assert evaluate(col("asal")) == 40.0

    def test_literal(self):
        assert evaluate(lit(7)) == 7

    def test_comparison_true(self):
        assert evaluate(Comparison(">", col("e.sal"), col("asal"))) is True

    def test_comparison_false(self):
        assert evaluate(Comparison("<", col("e.sal"), lit(10))) is False

    def test_all_comparison_ops(self):
        cases = {
            "=": False,
            "!=": True,
            "<": False,
            "<=": False,
            ">": True,
            ">=": True,
        }
        for op, expected in cases.items():
            assert evaluate(Comparison(op, col("e.sal"), lit(40.0))) is expected

    def test_and_short_circuit_semantics(self):
        expression = And(
            [Comparison(">", col("e.sal"), lit(0)), lit(False)]
        )
        assert evaluate(expression) is False

    def test_or(self):
        expression = Or([lit(False), Comparison("=", col("e.dno"), lit(3))])
        assert evaluate(expression) is True

    def test_not(self):
        assert evaluate(Not(lit(False))) is True

    def test_arithmetic(self):
        assert evaluate(Arith("+", col("e.sal"), lit(10))) == 60.0
        assert evaluate(Arith("-", col("e.sal"), lit(10))) == 40.0
        assert evaluate(Arith("*", col("e.dno"), lit(2))) == 6
        assert evaluate(Arith("/", col("e.sal"), lit(2))) == 25.0

    def test_func_call(self):
        expression = FuncCall("half", lambda v: v / 2, [col("e.sal")])
        assert evaluate(expression) == 25.0

    def test_unknown_comparison_op(self):
        with pytest.raises(PlanError):
            Comparison("~", lit(1), lit(2))

    def test_unknown_arith_op(self):
        with pytest.raises(PlanError):
            Arith("%", lit(1), lit(2))

    def test_bind_unknown_column(self):
        with pytest.raises(SchemaError):
            col("zzz.q").bind(SCHEMA)


class TestAnalysis:
    def test_columns(self):
        expression = And(
            [
                Comparison("=", col("e.dno"), lit(1)),
                Comparison(">", col("e.sal"), col("asal")),
            ]
        )
        assert expression.columns() == {
            ("e", "dno"),
            ("e", "sal"),
            (None, "asal"),
        }

    def test_aliases_excludes_none(self):
        expression = Comparison(">", col("e.sal"), col("asal"))
        assert expression.aliases() == {"e"}

    def test_dtype_of_comparison_is_bool(self):
        assert (
            Comparison("=", col("e.dno"), lit(1)).dtype(SCHEMA)
            is DataType.BOOL
        )

    def test_dtype_of_division_is_float(self):
        assert Arith("/", col("e.dno"), lit(2)).dtype(SCHEMA) is DataType.FLOAT

    def test_dtype_promotion(self):
        assert (
            Arith("+", col("e.dno"), col("e.sal")).dtype(SCHEMA)
            is DataType.FLOAT
        )


class TestRewriting:
    def test_substitute_column(self):
        expression = Comparison(">", col("e.sal"), lit(5))
        rewritten = expression.substitute({("e", "sal"): col("x.salary")})
        assert rewritten.columns() == {("x", "salary")}

    def test_substitute_leaves_others(self):
        expression = Comparison(">", col("e.sal"), col("e.dno"))
        rewritten = expression.substitute({("e", "sal"): col("x.s")})
        assert ("e", "dno") in rewritten.columns()

    def test_substitute_with_expression(self):
        expression = Comparison(">", col("avg_out"), lit(1))
        rewritten = expression.substitute(
            {(None, "avg_out"): Arith("/", col("s"), col("c"))}
        )
        assert rewritten.columns() == {(None, "s"), (None, "c")}

    def test_equality_and_hash(self):
        a = Comparison("=", col("e.dno"), lit(1))
        b = Comparison("=", col("e.dno"), lit(1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Comparison("=", col("e.dno"), lit(2))


class TestPredicateUtilities:
    def test_conjuncts_flatten_nested_and(self):
        expression = And(
            [And([lit(True), lit(False)]), Comparison("=", lit(1), lit(1))]
        )
        assert len(conjuncts(expression)) == 3

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == ()

    def test_and_all_roundtrip(self):
        parts = [lit(True), Comparison("=", col("e.dno"), lit(1))]
        combined = and_all(parts)
        assert conjuncts(combined) == tuple(parts)

    def test_and_all_empty(self):
        assert and_all([]) is None

    def test_and_all_single(self):
        single = lit(True)
        assert and_all([single]) is single

    def test_equijoin_sides_positive(self):
        sides = equijoin_sides(Comparison("=", col("a.x"), col("b.y")))
        assert sides == (("a", "x"), ("b", "y"))

    def test_equijoin_sides_negative(self):
        assert equijoin_sides(Comparison("<", col("a.x"), col("b.y"))) is None
        assert equijoin_sides(Comparison("=", col("a.x"), lit(1))) is None

    def test_comparison_with_literal_normalizes(self):
        flipped = comparison_with_literal(Comparison("<", lit(5), col("a.x")))
        assert flipped == (("a", "x"), ">", 5)

    def test_comparison_with_literal_plain(self):
        direct = comparison_with_literal(Comparison(">=", col("a.x"), lit(2)))
        assert direct == (("a", "x"), ">=", 2)

    def test_col_helper_parses_alias(self):
        reference = col("e.sal")
        assert reference.alias == "e" and reference.name == "sal"

    def test_col_helper_bare(self):
        reference = col("sal")
        assert reference.alias is None
