"""Tests for the full aggregate-view optimizer (Sections 5.3/5.4)."""

import pytest

from repro.algebra.legality import check_plan
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.optimizer import (
    OptimizerOptions,
    optimize_query,
    optimize_traditional,
)
from repro.sql import bind_sql

EXAMPLE1 = """
with a1(dno, asal) as (select e2.dno, avg(e2.sal) from emp e2 group by e2.dno)
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
"""

TWO_VIEWS = """
with v1(dno, asal) as (select e.dno, avg(e.sal) from emp e group by e.dno),
     v2(dno, msal) as (select e.dno, max(e.sal) from emp e group by e.dno)
select d.budget, v1.asal, v2.msal from dept d, v1, v2
where d.dno = v1.dno and v1.dno = v2.dno and d.budget < 2000000
"""

OUTER_GROUP = """
with v(dno, total) as (select e.dno, sum(e.sal) from emp e group by e.dno)
select d.loc, max(v.total) as m from dept d, v
where d.dno = v.dno
group by d.loc
having max(v.total) > 0
"""


def both_plans(db, sql, options=None):
    query = bind_sql(sql, db.catalog)
    full = optimize_query(query, db.catalog, db.params, options)
    traditional = optimize_traditional(query, db.catalog, db.params)
    return query, full, traditional


class TestCorrectness:
    @pytest.mark.parametrize("sql", [EXAMPLE1, TWO_VIEWS, OUTER_GROUP])
    def test_plans_match_reference(self, emp_dept_db, sql):
        query, full, traditional = both_plans(emp_dept_db, sql)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        for result in (full, traditional):
            check_plan(result.plan, emp_dept_db.catalog)
            rows, _ = emp_dept_db.execute_plan(result.plan)
            assert rows_equal_bag(reference.rows, rows.rows)

    def test_single_block_query(self, emp_dept_db):
        sql = "select e.dno, avg(e.sal) as a from emp e group by e.dno"
        query, full, traditional = both_plans(emp_dept_db, sql)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        rows, _ = emp_dept_db.execute_plan(full.plan)
        assert rows_equal_bag(reference.rows, rows.rows)

    def test_unnested_subquery_roundtrip(self, emp_dept_db):
        sql = (
            "select e1.sal from emp e1 where e1.age < 30 and e1.sal > "
            "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)"
        )
        query, full, traditional = both_plans(emp_dept_db, sql)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        rows, _ = emp_dept_db.execute_plan(full.plan)
        assert rows_equal_bag(reference.rows, rows.rows)


class TestGuarantee:
    """'Our cost-based optimization algorithm is guaranteed to pick a
    plan that is no worse than the traditional optimization algorithm.'"""

    @pytest.mark.parametrize("sql", [EXAMPLE1, TWO_VIEWS, OUTER_GROUP])
    def test_no_worse_than_traditional(self, emp_dept_db, sql):
        _, full, traditional = both_plans(emp_dept_db, sql)
        assert full.cost <= traditional.cost + 1e-9

    def test_traditional_cost_recorded(self, emp_dept_db):
        _, full, traditional = both_plans(emp_dept_db, EXAMPLE1)
        assert full.traditional_cost == pytest.approx(traditional.cost)

    def test_improvement_factor(self, emp_dept_db):
        _, full, _ = both_plans(emp_dept_db, EXAMPLE1)
        factor = full.improvement_over_traditional
        assert factor is not None and factor >= 1.0


class TestSearchSpace:
    def test_alternatives_enumerated(self, emp_dept_db):
        _, full, _ = both_plans(emp_dept_db, EXAMPLE1)
        # at least the empty pull set and the {e1} pull set
        pulls = {tuple(alt[0].get("b", ())) for alt in full.alternatives}
        assert () in pulls
        assert ("e1",) in pulls

    def test_k_level_zero_disables_pullup(self, emp_dept_db):
        _, full, _ = both_plans(
            emp_dept_db,
            EXAMPLE1,
            OptimizerOptions(k_level=0),
        )
        pulls = {tuple(alt[0].get("b", ())) for alt in full.alternatives}
        assert pulls == {()}

    def test_disable_pullup_option(self, emp_dept_db):
        _, full, _ = both_plans(
            emp_dept_db, EXAMPLE1, OptimizerOptions(enable_pullup=False)
        )
        pulls = {tuple(alt[0].get("b", ())) for alt in full.alternatives}
        assert pulls == {()}

    def test_multi_view_combos_disjoint(self, emp_dept_db):
        query = bind_sql(TWO_VIEWS, emp_dept_db.catalog)
        full = optimize_query(query, emp_dept_db.catalog, emp_dept_db.params)
        for combo, _cost in full.alternatives:
            used = []
            for pulled in combo.values():
                used.extend(pulled)
            assert len(used) == len(set(used))

    def test_predicate_sharing_restriction(self, emp_dept_db):
        sql = """
        with v(dno, asal) as (
            select e.dno, avg(e.sal) from emp e group by e.dno
        )
        select v.asal, d2.budget from v, dept d1, dept d2
        where v.dno = d1.dno and d2.loc = 0
        """
        query = bind_sql(sql, emp_dept_db.catalog)
        restricted = optimize_query(
            query,
            emp_dept_db.catalog,
            emp_dept_db.params,
            OptimizerOptions(require_shared_predicate=True),
        )
        # d2 shares no predicate with the view: never pulled
        for combo, _ in restricted.alternatives:
            assert "d2" not in combo.get("v", ())
        unrestricted = optimize_query(
            query,
            emp_dept_db.catalog,
            emp_dept_db.params,
            OptimizerOptions(require_shared_predicate=False),
        )
        pulled_sets = {combo.get("v", ()) for combo, _ in
                       unrestricted.alternatives}
        assert any("d2" in pulled for pulled in pulled_sets)

    def test_stats_track_combinations(self, emp_dept_db):
        query = bind_sql(TWO_VIEWS, emp_dept_db.catalog)
        full = optimize_query(query, emp_dept_db.catalog, emp_dept_db.params)
        assert full.stats.combinations_enumerated == len(full.alternatives)

    def test_max_combinations_cap_recorded(self, emp_dept_db):
        query = bind_sql(TWO_VIEWS, emp_dept_db.catalog)
        capped = optimize_query(
            query,
            emp_dept_db.catalog,
            emp_dept_db.params,
            OptimizerOptions(max_combinations=1),
        )
        assert capped.stats.combinations_truncated > 0  # never silent


class TestInvariantSplitIntegration:
    SPLIT_VIEW = """
    with c(dno, asal) as (
        select e.dno, avg(e.sal) from emp e, dept d
        where e.dno = d.dno and d.budget < 1500000
        group by e.dno
    )
    select v.asal from c v where v.asal > 0
    """

    def test_split_query_correct(self, emp_dept_db):
        query = bind_sql(self.SPLIT_VIEW, emp_dept_db.catalog)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        full = optimize_query(query, emp_dept_db.catalog, emp_dept_db.params)
        rows, _ = emp_dept_db.execute_plan(full.plan)
        assert rows_equal_bag(reference.rows, rows.rows)

    def test_restore_set_always_candidate(self, emp_dept_db):
        query = bind_sql(self.SPLIT_VIEW, emp_dept_db.catalog)
        full = optimize_query(
            query,
            emp_dept_db.catalog,
            emp_dept_db.params,
            OptimizerOptions(k_level=0),  # even with pull-up disabled
        )
        pulled_sets = {combo.get("v", ()) for combo, _ in full.alternatives}
        assert ("v__d",) in pulled_sets  # the restore set survives k=0

    def test_split_disabled_keeps_view_whole(self, emp_dept_db):
        query = bind_sql(self.SPLIT_VIEW, emp_dept_db.catalog)
        reference = evaluate_canonical(query, emp_dept_db.catalog)
        result = optimize_query(
            query,
            emp_dept_db.catalog,
            emp_dept_db.params,
            OptimizerOptions(enable_invariant_split=False),
        )
        rows, _ = emp_dept_db.execute_plan(result.plan)
        assert rows_equal_bag(reference.rows, rows.rows)
