"""Tests for optimizer options, search statistics, and cost params."""

import pytest

from repro.cost.params import CostParams
from repro.optimizer.options import TRADITIONAL, OptimizerOptions
from repro.optimizer.stats import SearchStats


class TestOptimizerOptions:
    def test_defaults_enable_everything(self):
        options = OptimizerOptions()
        assert options.enable_pullup
        assert options.enable_pushdown
        assert options.enable_invariant_split
        assert options.width_guard
        assert options.share_view_dp

    def test_traditional_preset(self):
        assert not TRADITIONAL.enable_pullup
        assert not TRADITIONAL.enable_pushdown
        assert not TRADITIONAL.enable_invariant_split

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            OptimizerOptions(k_level=-1)

    def test_zero_plans_per_set_rejected(self):
        with pytest.raises(ValueError):
            OptimizerOptions(max_plans_per_set=0)

    def test_zero_combinations_rejected(self):
        with pytest.raises(ValueError):
            OptimizerOptions(max_combinations=0)

    def test_frozen(self):
        options = OptimizerOptions()
        with pytest.raises(Exception):
            options.k_level = 5  # type: ignore[misc]


class TestCostParams:
    def test_memory_floor(self):
        with pytest.raises(ValueError):
            CostParams(memory_pages=2)

    def test_selectivity_bounds(self):
        with pytest.raises(ValueError):
            CostParams(default_selectivity=0.0)
        with pytest.raises(ValueError):
            CostParams(default_selectivity=1.5)
        with pytest.raises(ValueError):
            CostParams(having_selectivity=-0.1)

    def test_valid_params(self):
        params = CostParams(memory_pages=16, default_selectivity=0.5)
        assert params.memory_pages == 16


class TestSearchStats:
    def test_merge_accumulates(self):
        first = SearchStats(joinplan_calls=3, subsets_expanded=2)
        second = SearchStats(joinplan_calls=4, plans_retained=5)
        first.merge(second)
        assert first.joinplan_calls == 7
        assert first.subsets_expanded == 2
        assert first.plans_retained == 5

    def test_merge_all_fields(self):
        source = SearchStats(
            subsets_expanded=1,
            joinplan_calls=2,
            plans_retained=3,
            plans_pruned=4,
            early_groupby_considered=5,
            early_groupby_accepted=6,
            pullup_sets_enumerated=7,
            combinations_enumerated=8,
            combinations_truncated=9,
            blocks_optimized=10,
            view_plans_reused=11,
            connected_subsets_skipped=12,
            predicate_split_cache_hits=13,
            timings={"dp": 0.5, "finalize": 0.25},
        )
        target = SearchStats()
        target.merge(source)
        assert target == source

    def test_merge_accumulates_timings(self):
        first = SearchStats()
        first.add_time("dp", 1.0)
        second = SearchStats()
        second.add_time("dp", 0.5)
        second.add_time("leaf_plans", 0.25)
        first.merge(second)
        assert first.timings == {"dp": 1.5, "leaf_plans": 0.25}

    def test_as_dict_covers_every_field_and_flattens_timings(self):
        stats = SearchStats(joinplan_calls=4, connected_subsets_skipped=9)
        stats.add_time("dp", 0.125)
        out = stats.as_dict()
        assert out["joinplan_calls"] == 4
        assert out["connected_subsets_skipped"] == 9
        assert out["time_dp_s"] == 0.125
        assert "timings" not in out
        from dataclasses import fields

        named = {spec.name for spec in fields(SearchStats)} - {"timings"}
        assert named <= set(out)

    def test_summary_mentions_counters(self):
        stats = SearchStats(joinplan_calls=12, subsets_expanded=3)
        text = stats.summary()
        assert "joinplans=12" in text
        assert "subsets=3" in text

    def test_summary_shows_truncation_only_when_present(self):
        assert "truncated" not in SearchStats().summary()
        assert "truncated" in SearchStats(combinations_truncated=2).summary()
