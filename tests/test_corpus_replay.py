"""Replay the pinned fuzz regression corpus.

Every ``tests/corpus/*.sql`` file is a shrunk, self-contained repro of
a divergence class found (and fixed) by the differential fuzzer.  Each
is replayed through the full metamorphic config matrix and compared
against the SQLite / reference oracles — any divergence is a
regression of a previously fixed bug.
"""

from pathlib import Path

import pytest

from repro.testing import check_script, load_corpus_script

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.sql"))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 10, (
        "the regression corpus must keep at least 10 pinned cases"
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_case_replays_clean(path):
    script = load_corpus_script(path)
    assert any(stmt.kind == "query" for stmt in script), (
        f"{path.name} contains no query — nothing to cross-check"
    )
    report = check_script(script)
    assert report.ok, f"{path.name} regressed:\n" + "\n".join(
        divergence.describe() for divergence in report.divergences
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_case_is_documented(path):
    first = path.read_text().splitlines()[0]
    assert first.startswith("--"), (
        f"{path.name} must open with a comment naming what it pins"
    )
