"""Integration tests for the physical operators: results and IO.

Each join/group method is executed against the same inputs and checked
for identical results, and IO charges are checked against the storage
shapes (the executed-IO = estimated-IO property is tested separately in
test_cost_model).
"""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
)
from repro.catalog.schema import table_row_schema
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import rows_equal_bag


def scan(db, table, alias, filters=(), include_rid=False):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
        filters=filters,
        include_rid=include_rid,
    )


def run(db, plan):
    context = ExecutionContext(db.catalog, db.io, db.params)
    with db.io.measure() as span:
        result = execute_plan(plan, context)
    return result, span.delta


class TestScans:
    def test_heap_scan_rows_and_io(self, emp_dept_db):
        plan = scan(emp_dept_db, "emp", "e")
        result, io = run(emp_dept_db, plan)
        table = emp_dept_db.catalog.table("emp")
        assert len(result.rows) == table.num_rows
        assert io.page_reads == table.num_pages

    def test_scan_filters_applied(self, emp_dept_db):
        plan = scan(
            emp_dept_db,
            "emp",
            "e",
            filters=(Comparison("<", col("e.age"), lit(30)),),
        )
        result, _ = run(emp_dept_db, plan)
        position = plan.schema.index_of("e", "age")
        assert all(row[position] < 30 for row in result.rows)
        assert result.rows  # fixture guarantees some young employees

    def test_filter_can_reference_unprojected_column(self, emp_dept_db):
        plan = ScanNode(
            "emp",
            "e",
            table_row_schema(
                "e", emp_dept_db.catalog.table("emp").columns
            ).project([("e", "sal")]).fields,
            filters=(Comparison("<", col("e.age"), lit(30)),),
        )
        result, _ = run(emp_dept_db, plan)
        assert len(result.schema) == 1
        assert result.rows

    def test_index_scan_matches_heap_scan(self, emp_dept_db):
        heap = scan(
            emp_dept_db,
            "emp",
            "e",
            filters=(Comparison("=", col("e.dno"), lit(3)),),
        )
        via_index = ScanNode(
            "emp",
            "e",
            heap.schema.fields,
            index_name="emp_dno_idx",
            index_values=(3,),
        )
        heap_result, heap_io = run(emp_dept_db, heap)
        index_result, index_io = run(emp_dept_db, via_index)
        assert rows_equal_bag(heap_result.rows, index_result.rows)
        assert index_io.page_reads > 0

    def test_rid_scan(self, emp_dept_db):
        plan = scan(emp_dept_db, "emp", "e", include_rid=True)
        result, _ = run(emp_dept_db, plan)
        rid_position = plan.schema.index_of("e", "_rid")
        rids = [row[rid_position] for row in result.rows]
        assert rids == sorted(set(rids))  # distinct, in insertion order


class TestJoins:
    def join(self, db, method, index_name=None, projection=None):
        return JoinNode(
            scan(db, "emp", "e"),
            scan(db, "dept", "d"),
            method=method,
            equi_keys=[(("e", "dno"), ("d", "dno"))],
            projection=projection,
            index_name=index_name,
        )

    def test_all_methods_agree(self, emp_dept_db):
        db = emp_dept_db
        db.create_index("dept_pk_idx", "dept", ["dno"])
        baseline, _ = run(db, self.join(db, "hj"))
        for method, index in (
            ("smj", None),
            ("nlj", None),
            ("inlj", "dept_pk_idx"),
        ):
            result, _ = run(db, self.join(db, method, index))
            assert rows_equal_bag(baseline.rows, result.rows), method

    def test_join_row_count_fk(self, emp_dept_db):
        # every employee matches exactly one department
        result, _ = run(emp_dept_db, self.join(emp_dept_db, "hj"))
        assert len(result.rows) == emp_dept_db.catalog.table("emp").num_rows

    def test_projection_applied(self, emp_dept_db):
        plan = self.join(
            emp_dept_db, "hj", projection=[("e", "sal"), ("d", "budget")]
        )
        result, _ = run(emp_dept_db, plan)
        assert len(result.schema) == 2

    def test_residual_predicates(self, emp_dept_db):
        plan = JoinNode(
            scan(emp_dept_db, "emp", "e"),
            scan(emp_dept_db, "dept", "d"),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
            residuals=(Comparison(">", col("d.budget"), col("e.sal")),),
        )
        result, _ = run(emp_dept_db, plan)
        budget = plan.schema.index_of("d", "budget")
        salary = plan.schema.index_of("e", "sal")
        assert all(row[budget] > row[salary] for row in result.rows)

    def test_cross_join_via_nlj(self, emp_dept_db):
        plan = JoinNode(
            scan(emp_dept_db, "dept", "d1"),
            scan(emp_dept_db, "dept", "d2"),
            method="nlj",
        )
        result, _ = run(emp_dept_db, plan)
        departments = emp_dept_db.catalog.table("dept").num_rows
        assert len(result.rows) == departments * departments

    def test_smj_output_sorted_on_keys(self, emp_dept_db):
        result, _ = run(emp_dept_db, self.join(emp_dept_db, "smj"))
        position = 1  # e.dno
        values = [row[position] for row in result.rows]
        assert values == sorted(values)

    def test_duplicate_join_keys_cross_product(self, nopk_db):
        # events has repeated dno values on both sides
        plan = JoinNode(
            scan(nopk_db, "events", "a"),
            scan(nopk_db, "events", "b"),
            method="smj",
            equi_keys=[(("a", "dno"), ("b", "dno"))],
        )
        smj, _ = run(nopk_db, plan)
        plan_hj = JoinNode(
            scan(nopk_db, "events", "a"),
            scan(nopk_db, "events", "b"),
            method="hj",
            equi_keys=[(("a", "dno"), ("b", "dno"))],
        )
        hj, _ = run(nopk_db, plan_hj)
        assert rows_equal_bag(smj.rows, hj.rows)


class TestGroupBy:
    def group(self, db, method="hash", having=()):
        return GroupByNode(
            scan(db, "emp", "e"),
            group_keys=[("e", "dno")],
            aggregates=[
                ("asal", AggregateCall("avg", col("e.sal"))),
                ("n", AggregateCall("count", None)),
            ],
            having=having,
            method=method,
        )

    def test_hash_grouping(self, emp_dept_db):
        result, _ = run(emp_dept_db, self.group(emp_dept_db))
        assert len(result.rows) == 7  # departments in the fixture
        count_position = result.schema.index_of(None, "n")
        total = sum(row[count_position] for row in result.rows)
        assert total == emp_dept_db.catalog.table("emp").num_rows

    def test_sort_method_agrees_with_hash(self, emp_dept_db):
        hashed, _ = run(emp_dept_db, self.group(emp_dept_db, "hash"))
        sorted_, _ = run(emp_dept_db, self.group(emp_dept_db, "sort"))
        assert rows_equal_bag(hashed.rows, sorted_.rows)

    def test_having_filters_groups(self, emp_dept_db):
        having = (Comparison(">", col("n"), lit(18)),)
        result, _ = run(emp_dept_db, self.group(emp_dept_db, having=having))
        count_position = result.schema.index_of(None, "n")
        assert all(row[count_position] > 18 for row in result.rows)

    def test_empty_input_no_groups(self, emp_dept_db):
        plan = GroupByNode(
            scan(
                emp_dept_db,
                "emp",
                "e",
                filters=(Comparison("<", col("e.age"), lit(0)),),
            ),
            group_keys=[("e", "dno")],
            aggregates=[("n", AggregateCall("count", None))],
        )
        result, _ = run(emp_dept_db, plan)
        assert result.rows == []

    def test_projection_drops_keys(self, emp_dept_db):
        plan = GroupByNode(
            scan(emp_dept_db, "emp", "e"),
            group_keys=[("e", "dno")],
            aggregates=[("asal", AggregateCall("avg", col("e.sal")))],
            projection=[(None, "asal")],
        )
        result, _ = run(emp_dept_db, plan)
        assert len(result.schema) == 1


class TestOtherOperators:
    def test_sort_orders_rows(self, emp_dept_db):
        plan = SortNode(scan(emp_dept_db, "emp", "e"), [("e", "sal")])
        result, _ = run(emp_dept_db, plan)
        position = plan.schema.index_of("e", "sal")
        values = [row[position] for row in result.rows]
        assert values == sorted(values)

    def test_filter_node(self, emp_dept_db):
        plan = FilterNode(
            scan(emp_dept_db, "emp", "e"),
            [Comparison(">", col("e.sal"), lit(100_000))],
        )
        result, _ = run(emp_dept_db, plan)
        position = plan.schema.index_of("e", "sal")
        assert all(row[position] > 100_000 for row in result.rows)

    def test_project_computes_expressions(self, emp_dept_db):
        from repro.algebra.expressions import Arith

        plan = ProjectNode(
            scan(emp_dept_db, "emp", "e"),
            [(None, "monthly", Arith("/", col("e.sal"), lit(12)))],
        )
        result, _ = run(emp_dept_db, plan)
        assert all(len(row) == 1 for row in result.rows)

    def test_rename_permutes_and_renames(self, emp_dept_db):
        plan = RenameNode(
            scan(emp_dept_db, "emp", "e"),
            [("v", "salary", ("e", "sal")), ("v", "id", ("e", "eno"))],
        )
        result, _ = run(emp_dept_db, plan)
        assert [f.key for f in result.schema] == [
            ("v", "salary"),
            ("v", "id"),
        ]
