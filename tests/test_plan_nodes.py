"""Unit tests for plan nodes, schema propagation, and legality checks."""

import pytest

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Arith, Comparison, col, lit
from repro.algebra.legality import check_plan
from repro.algebra.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    ProjectNode,
    RenameNode,
    ScanNode,
    SortNode,
    explain,
    plan_nodes,
)
from repro.catalog import Field
from repro.catalog.schema import RID_COLUMN
from repro.datatypes import DataType
from repro.errors import PlanError


def emp_scan(alias="e", filters=()):
    return ScanNode(
        "emp",
        alias,
        [
            Field(alias, "eno", DataType.INT),
            Field(alias, "dno", DataType.INT),
            Field(alias, "sal", DataType.FLOAT),
        ],
        filters=filters,
    )


def dept_scan(alias="d"):
    return ScanNode(
        "dept",
        alias,
        [
            Field(alias, "dno", DataType.INT),
            Field(alias, "budget", DataType.FLOAT),
        ],
    )


class TestScanNode:
    def test_schema(self):
        scan = emp_scan()
        assert [f.key for f in scan.schema] == [
            ("e", "eno"),
            ("e", "dno"),
            ("e", "sal"),
        ]

    def test_include_rid_adds_field(self):
        scan = ScanNode(
            "emp", "e", [Field("e", "eno", DataType.INT)], include_rid=True
        )
        assert scan.schema.has("e", RID_COLUMN)

    def test_describe_mentions_access_path(self):
        assert "heap" in emp_scan().describe()


class TestJoinNode:
    def test_schema_concat_and_projection(self):
        join = JoinNode(
            emp_scan(),
            dept_scan(),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
            projection=[("e", "sal"), ("d", "budget")],
        )
        assert [f.key for f in join.schema] == [
            ("e", "sal"),
            ("d", "budget"),
        ]

    def test_default_projection_keeps_all(self):
        join = JoinNode(
            emp_scan(),
            dept_scan(),
            method="nlj",
        )
        assert len(join.schema) == 5

    def test_unknown_method(self):
        with pytest.raises(PlanError):
            JoinNode(emp_scan(), dept_scan(), method="zigzag")

    def test_equi_methods_require_keys(self):
        for method in ("hj", "smj"):
            with pytest.raises(PlanError):
                JoinNode(emp_scan(), dept_scan(), method=method)

    def test_inlj_requires_index(self):
        with pytest.raises(PlanError):
            JoinNode(
                emp_scan(),
                dept_scan(),
                method="inlj",
                equi_keys=[(("e", "dno"), ("d", "dno"))],
            )


class TestGroupByNode:
    def group(self, **kwargs):
        return GroupByNode(
            emp_scan(),
            group_keys=[("e", "dno")],
            aggregates=[("asal", AggregateCall("avg", col("e.sal")))],
            **kwargs,
        )

    def test_schema_has_keys_then_aggregates(self):
        group = self.group()
        assert [f.key for f in group.schema] == [
            ("e", "dno"),
            (None, "asal"),
        ]

    def test_aggregate_dtype_derived(self):
        group = self.group()
        assert group.schema.field_of(None, "asal").dtype is DataType.FLOAT

    def test_projection_can_drop_keys(self):
        group = GroupByNode(
            emp_scan(),
            group_keys=[("e", "dno"), ("e", "eno")],
            aggregates=[("asal", AggregateCall("avg", col("e.sal")))],
            projection=[(None, "asal")],
        )
        assert [f.key for f in group.schema] == [(None, "asal")]
        # internal schema still has everything for HAVING
        assert group.internal_schema.has("e", "eno")

    def test_name_collision_rejected(self):
        with pytest.raises(PlanError):
            GroupByNode(
                emp_scan(),
                group_keys=[("e", "dno")],
                aggregates=[
                    ("x", AggregateCall("sum", col("e.sal"))),
                    ("x", AggregateCall("avg", col("e.sal"))),
                ],
            )

    def test_unknown_method(self):
        with pytest.raises(PlanError):
            self.group(method="quantum")


class TestOtherNodes:
    def test_sort_validates_keys(self):
        with pytest.raises(Exception):
            SortNode(emp_scan(), [("zz", "q")])

    def test_sort_requires_keys(self):
        with pytest.raises(PlanError):
            SortNode(emp_scan(), [])

    def test_rename_schema(self):
        rename = RenameNode(
            emp_scan(), [("v", "salary", ("e", "sal"))]
        )
        assert [f.key for f in rename.schema] == [("v", "salary")]
        assert rename.schema.field_of("v", "salary").dtype is DataType.FLOAT

    def test_project_computes_dtype(self):
        project = ProjectNode(
            emp_scan(),
            [(None, "half", Arith("/", col("e.sal"), lit(2)))],
        )
        assert project.schema.field_of(None, "half").dtype is DataType.FLOAT

    def test_project_requires_outputs(self):
        with pytest.raises(PlanError):
            ProjectNode(emp_scan(), [])

    def test_filter_preserves_schema(self):
        filtered = FilterNode(
            emp_scan(), [Comparison(">", col("e.sal"), lit(1))]
        )
        assert filtered.schema == filtered.child.schema

    def test_filter_requires_predicates(self):
        with pytest.raises(PlanError):
            FilterNode(emp_scan(), [])


class TestTreeUtilities:
    def tree(self):
        join = JoinNode(
            emp_scan(),
            dept_scan(),
            method="hj",
            equi_keys=[(("e", "dno"), ("d", "dno"))],
        )
        return GroupByNode(
            join,
            group_keys=[("e", "dno")],
            aggregates=[("s", AggregateCall("sum", col("e.sal")))],
        )

    def test_plan_nodes_preorder(self):
        kinds = [type(node).__name__ for node in plan_nodes(self.tree())]
        assert kinds == ["GroupByNode", "JoinNode", "ScanNode", "ScanNode"]

    def test_explain_is_indented(self):
        text = explain(self.tree())
        lines = text.splitlines()
        assert lines[0].startswith("GroupBy")
        assert lines[1].startswith("  Join")
        assert lines[2].startswith("    Scan")


class TestLegality:
    def test_legal_tree_passes(self, emp_dept_db):
        tree = TestTreeUtilities().tree()
        check_plan(tree, emp_dept_db.catalog)

    def test_join_key_must_exist(self):
        join = JoinNode(
            emp_scan(),
            dept_scan(),
            method="hj",
            equi_keys=[(("e", "missing"), ("d", "dno"))],
        )
        with pytest.raises(PlanError):
            check_plan(join)

    def test_scan_foreign_column_rejected(self, emp_dept_db):
        scan = ScanNode(
            "emp", "e", [Field("e", "nonexistent", DataType.INT)]
        )
        with pytest.raises(PlanError):
            check_plan(scan, emp_dept_db.catalog)

    def test_scan_filter_scoped_to_table(self, emp_dept_db):
        scan = ScanNode(
            "emp",
            "e",
            [Field("e", "eno", DataType.INT)],
            filters=(Comparison("=", col("d.budget"), lit(1)),),
        )
        with pytest.raises(PlanError):
            check_plan(scan, emp_dept_db.catalog)

    def test_unknown_index_rejected(self, emp_dept_db):
        scan = ScanNode(
            "emp",
            "e",
            [Field("e", "eno", DataType.INT)],
            index_name="no_such_index",
            index_values=(1,),
        )
        with pytest.raises(PlanError):
            check_plan(scan, emp_dept_db.catalog)

    def test_having_must_resolve_in_internal_schema(self):
        group = GroupByNode(
            emp_scan(),
            group_keys=[("e", "dno")],
            aggregates=[("s", AggregateCall("sum", col("e.sal")))],
            having=(Comparison(">", col("e.eno"), lit(1)),),  # not grouped
        )
        with pytest.raises(PlanError):
            check_plan(group)
