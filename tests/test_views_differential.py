"""Differential harness: every query in a seeded corpus must return
identical rows with view rewriting on and off.

The corpus mixes query shapes that should rewrite (exact grouping,
coalescing, residual filters, HAVING, view-by-name) with shapes that
must stay on the base plan (non-group-column predicates, holistic
aggregates, extra grouping columns), interleaved with inserts so the
lazy-refresh path is exercised too. Soundness is "never wrong":
whatever the matcher decides, the answer cannot change.
"""

import random

import pytest

from repro import Database
from repro.optimizer.options import OptimizerOptions

NO_REWRITE = OptimizerOptions(enable_view_rewrite=False)

CORPUS_SEEDS = [3, 17, 42]

QUERIES = [
    # Rewritable: exact grouping, coalescing, residuals, having.
    "select e.dno, sum(e.sal) as s from emp e group by e.dno",
    "select e.dno, avg(e.sal) as a, count(e.eno) as n from emp e "
    "group by e.dno",
    "select e.dno, min(e.sal) as lo, max(e.sal) as hi from emp e "
    "group by e.dno",
    "select e.dno, stddev(e.sal) as sd from emp e group by e.dno",
    "select e.dno, sum(e.sal) as s from emp e where e.dno < 5 "
    "group by e.dno",
    "select e.dno, count(e.age) as n from emp e group by e.dno "
    "having count(e.eno) > 2",
    "select e.dno, sum(e.sal) as s from emp e group by e.dno "
    "having sum(e.sal) > 1000 and e.dno >= 1",
    "select x.dno, avg(x.sal) as a from emp x where x.dno != 3 "
    "group by x.dno",
    # Coalescing over the finer-grained view.
    "select e.age, sum(e.sal) as s from emp e group by e.age",
    # View referenced by name.
    "select m.dno, m.s from mv_sum m",
    "select m.s from mv_sum m where m.dno < 4",
    "select m.dno, m.a from mv_fine m where m.age > 30",
    # Must NOT rewrite (and must still be right).
    "select e.dno, sum(e.sal) as s from emp e where e.sal > 500 "
    "group by e.dno",
    "select e.dno, median(e.sal) as m from emp e group by e.dno",
    "select e.dno, e.age, count(e.eno) as n from emp e "
    "group by e.dno, e.age",
    "select e.eno, e.sal from emp e where e.dno = 2",
    # Join queries around the view's scope.
    "select e.dno, sum(d.budget) as b from emp e, dept d "
    "where e.dno = d.dno group by e.dno",
]


def build_corpus_db(seed):
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept",
        [("dno", "int"), ("budget", "float")],
        primary_key=["dno"],
    )
    rows = rng.randint(300, 600)
    dnos = rng.randint(5, 9)
    db.insert(
        "emp",
        [
            (
                e,
                rng.randrange(dnos),
                float(rng.randint(100, 999)),
                rng.randint(20, 60),
            )
            for e in range(rows)
        ],
    )
    db.insert(
        "dept",
        [(d, float(rng.randint(1_000, 9_000))) for d in range(dnos)],
    )
    db.analyze()
    db.create_materialized_view(
        "mv_sum",
        "select e.dno as dno, sum(e.sal) as s, count(e.eno) as n "
        "from emp e group by e.dno",
    )
    db.create_materialized_view(
        "mv_stats",
        "select e.dno as dno, avg(e.sal) as a, min(e.sal) as lo, "
        "max(e.sal) as hi, count(e.eno) as n, stddev(e.sal) as sd "
        "from emp e group by e.dno",
    )
    db.create_materialized_view(
        "mv_fine",
        "select e.dno as dno, e.age as age, sum(e.sal) as s, "
        "avg(e.sal) as a, count(e.eno) as n from emp e "
        "group by e.dno, e.age",
    )
    return db, rng, dnos


def assert_same_answer(db, sql, optimizer="full"):
    on = db.query(sql, optimizer=optimizer)
    off = db.query(sql, optimizer=optimizer, options=NO_REWRITE)
    assert on.columns == off.columns, sql
    assert sorted(map(repr, on.rows)) == sorted(map(repr, off.rows)), sql


class TestRewriteDifferential:
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_corpus_matches_with_and_without_rewrite(self, seed):
        db, rng, dnos = build_corpus_db(seed)
        next_eno = 10_000
        for round_number in range(3):
            for sql in QUERIES:
                assert_same_answer(db, sql)
            # Mutate between rounds so lazy refresh has work to do.
            delta = [
                (
                    next_eno + i,
                    rng.randrange(dnos + 1),
                    float(rng.randint(100, 999)),
                    rng.randint(20, 60),
                )
                for i in range(rng.randint(5, 20))
            ]
            next_eno += len(delta)
            db.insert("emp", delta)

    @pytest.mark.parametrize("optimizer", ["traditional", "greedy"])
    def test_corpus_under_other_optimizers(self, optimizer):
        db, _, _ = build_corpus_db(CORPUS_SEEDS[0])
        for sql in QUERIES:
            assert_same_answer(db, sql, optimizer=optimizer)

    def test_corpus_is_big_enough(self):
        assert len(QUERIES) * len(CORPUS_SEEDS) * 3 >= 100


class TestRewriteAgainstReference:
    """The rewritten plans must also agree with the brute-force
    evaluator, not just with the unrewritten optimizer."""

    REFERENCE_QUERIES = [
        "select e.dno, sum(e.sal) as s from emp e group by e.dno",
        "select e.dno, avg(e.sal) as a, count(e.eno) as n from emp e "
        "group by e.dno",
        "select e.dno, sum(e.sal) as s from emp e where e.dno < 5 "
        "group by e.dno",
        "select e.age, sum(e.sal) as s from emp e group by e.age",
    ]

    def test_rewrites_match_reference(self):
        db, _, _ = build_corpus_db(CORPUS_SEEDS[1])
        for sql in self.REFERENCE_QUERIES:
            expected = sorted(map(repr, db.reference(sql).rows))
            actual = sorted(map(repr, db.query(sql).rows))
            assert actual == expected, sql
