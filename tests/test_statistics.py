"""The statistics subsystem: NULL-aware collection, histograms, MCVs,
block-sampled ANALYZE, staleness-driven refresh, the ANALYZE statement,
and the estimate-vs-actual feedback loop."""

import pytest

from repro.db import Database
from repro.errors import CatalogError, SqlSyntaxError
from repro.optimizer.options import OptimizerOptions
from repro.stats import (
    EXACT,
    UNIFORM,
    StatsConfig,
    StatsConfig as _StatsConfig,  # noqa: F401 (re-export sanity)
    build_histogram,
    estimate_ndv,
    median,
    percentile,
    q_error,
    sample_pages,
)
from repro.stats.collect import analyze_table
from repro.workloads.generator import (
    RandomQueryConfig,
    build_star_database,
)


def make_db(rows, nullable=("v",), stats_config=None):
    db = Database(stats_config=stats_config)
    db.create_table(
        "t",
        [("k", "int"), ("v", "int")],
        primary_key=["k"],
        nullable=list(nullable) if nullable else None,
    )
    db.insert("t", rows)
    return db


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


class TestHistogram:
    def test_equi_depth_fractions(self):
        hist = build_histogram([float(i) for i in range(100)], 4)
        assert hist is not None
        assert hist.fraction_below(0.0, inclusive=False) == 0.0
        assert hist.fraction_below(50.0, inclusive=False) == pytest.approx(
            0.5, abs=0.05
        )
        assert hist.fraction_below(99.0, inclusive=True) == pytest.approx(
            1.0
        )

    def test_ties_never_straddle_buckets(self):
        # 90 copies of one value squeezed into 4 buckets: edges get
        # pushed past the run, so bounds stay strictly increasing (the
        # tie never becomes a zero-width straddled boundary) and the
        # run's whole mass sits between 5 and 6.
        values = sorted([5.0] * 90 + [float(i) for i in range(10)])
        hist = build_histogram(values, 4)
        assert all(
            lo < hi for lo, hi in zip(hist.bounds, hist.bounds[1:])
        )
        # The whole run landed in a single bucket...
        assert max(hist.fractions) >= 0.9
        # ...and every row is accounted for exactly once.
        assert sum(hist.fractions) == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        empty = build_histogram([], 4)
        assert empty.num_buckets == 0
        assert empty.fraction_below(1.0, inclusive=True) == 0.0
        single = build_histogram([1.0], 4)
        assert single.fraction_below(1.0, inclusive=True) == pytest.approx(
            1.0
        )
        assert single.fraction_below(0.5, inclusive=False) == 0.0


# ----------------------------------------------------------------------
# NULL handling (regression: NULLs inflated NDV and killed min/max)
# ----------------------------------------------------------------------


class TestNullHandling:
    def test_nulls_excluded_from_ndv_and_range(self):
        db = make_db([(0, None), (1, 5), (2, 5), (3, 9), (4, None)])
        stats = db.catalog.stats("t")
        column = stats.column("v")
        assert column.n_distinct == 2  # {5, 9}; NULLs don't count
        assert column.null_count == 2
        assert column.min_value == 5
        assert column.max_value == 9
        assert column.null_fraction(stats.row_count) == pytest.approx(0.4)

    def test_all_null_column(self):
        db = make_db([(0, None), (1, None)])
        column = db.catalog.stats("t").column("v")
        assert column.n_distinct == 0
        assert column.null_count == 2
        assert column.min_value is None

    def test_range_filter_estimate_survives_nulls(self):
        # Before the refactor a single NULL raised TypeError inside
        # min()/max(), which was swallowed and the range estimate
        # silently degraded to NDV-only. With the generator's
        # null_fraction knob the estimate must stay selective.
        config = RandomQueryConfig(
            seed=3, fact_rows=600, dim_rows=20, null_fraction=0.2
        )
        db = build_star_database(config)
        stats = db.catalog.stats("fact")
        qty = stats.column("qty")
        assert qty.null_count > 0
        assert qty.min_value is not None and qty.max_value is not None
        result = db.query(
            "select f.f_id from fact f where f.qty < 5.0", execute=False
        )
        estimated = result.plan.props.rows
        # qty spans [1, 50]: a `< 5` filter must not estimate the
        # whole table, and NULLs must discount it further.
        assert estimated < 0.3 * stats.row_count


# ----------------------------------------------------------------------
# Block sampling + Duj1 NDV estimation
# ----------------------------------------------------------------------


class TestSampling:
    def test_sample_pages_deterministic(self):
        config = StatsConfig(sample_fraction=0.25, min_sample_pages=4)
        first = sample_pages("fact", 100, config)
        second = sample_pages("fact", 100, config)
        assert first == second
        assert len(first) == max(4, 25)
        assert all(0 <= p < 100 for p in first)

    def test_estimate_ndv_unique_column(self):
        # All-singleton sample of a unique column scales to the table.
        assert estimate_ndv(500, 500, 500, 2000) == 2000

    def test_estimate_ndv_exhausted_domain(self):
        # No singletons: the sample saw every value often; D ~= d.
        assert estimate_ndv(10, 0, 500, 2000) == 10

    def test_sampled_analyze_respects_page_budget(self):
        rows = [(i, i % 50) for i in range(20000)]
        config = StatsConfig(
            full_scan_pages=4, sample_fraction=0.2, min_sample_pages=4
        )
        db = make_db(rows, nullable=None, stats_config=config)
        stats = db.catalog.stats("t")
        pages = db.catalog.info("t").table.num_pages
        assert pages > config.full_scan_pages
        assert stats.sampled
        budget = max(
            config.min_sample_pages,
            int(pages * config.sample_fraction),
        )
        assert 0 < stats.pages_scanned <= budget
        # Error bounds on the generator-style data: the unique key is
        # recovered exactly by Duj1 scaling, the 50-value column has
        # no singletons so its sample NDV is already complete, and the
        # row count comes from the heap, not the sample.
        assert stats.row_count == 20000
        key_ndv = stats.column("k").n_distinct
        assert 20000 / 3 <= key_ndv <= 20000 * 3
        assert stats.column("v").n_distinct == 50

    def test_exact_preset_never_samples(self):
        rows = [(i, i) for i in range(20000)]
        db = make_db(rows, nullable=None, stats_config=EXACT)
        stats = db.catalog.stats("t")
        assert not stats.sampled
        assert stats.column("k").n_distinct == 20000


# ----------------------------------------------------------------------
# Staleness: inserts must be O(1), refresh lazy and thresholded
# ----------------------------------------------------------------------


class TestStaleness:
    def test_insert_cost_does_not_scale_with_table_size(self):
        # The micro-benchmark behind satellite 2: with the old eager
        # recompute every insert rescanned the table, so N small
        # inserts cost O(N * table). Now the deterministic
        # pages_scanned_total counter must stay flat while growth sits
        # below the staleness threshold, regardless of table size.
        db = make_db([(i, i % 7) for i in range(5000)], nullable=None)
        info = db.catalog.info("t")
        db.catalog.stats("t")  # initial collection
        baseline_scans = info.pages_scanned_total
        baseline_count = info.analyze_count
        for i in range(50):  # 1% growth, well under the 20% threshold
            db.insert("t", [(5000 + i, i)])
            db.catalog.stats("t")
        assert info.pages_scanned_total == baseline_scans
        assert info.analyze_count == baseline_count
        # Row/page counts still track reality without a rescan.
        assert db.catalog.stats("t").row_count == 5050

    def test_growth_past_threshold_triggers_one_reanalyze(self):
        db = make_db([(i, i) for i in range(100)], nullable=None)
        info = db.catalog.info("t")
        db.catalog.stats("t")
        count = info.analyze_count
        db.insert("t", [(100 + i, i) for i in range(30)])  # +30%
        db.catalog.stats("t")
        db.catalog.stats("t")
        assert info.analyze_count == count + 1

    def test_epoch_bumps_on_insert_and_invalidate(self):
        db = make_db([(0, 0)], nullable=None)
        info = db.catalog.info("t")
        epoch = info.stats_epoch
        db.insert("t", [(1, 1)])
        assert info.stats_epoch == epoch + 1
        info.invalidate_stats()
        assert info.stats_epoch == epoch + 2
        assert db.catalog.stats("t").row_count == 2  # lazily recollected


# ----------------------------------------------------------------------
# The ANALYZE statement
# ----------------------------------------------------------------------


class TestAnalyzeStatement:
    def test_analyze_all_and_single_table(self):
        db = make_db([(0, 1), (1, 2)])
        info = db.catalog.info("t")
        count = info.analyze_count
        assert db.execute("analyze t") is None
        assert info.analyze_count == count + 1
        assert db.execute("ANALYZE") is None
        assert info.analyze_count == count + 2

    def test_analyze_matview_resolves_to_backing(self):
        db = make_db([(0, 1), (1, 2), (2, 2)])
        db.execute(
            "create materialized view mv as "
            "select t.v, count(t.k) as c from t group by t.v"
        )
        backing = db.catalog._matviews["mv"].backing_name
        backing_info = db.catalog.info(backing)
        count = backing_info.analyze_count
        assert db.analyze("mv") == ["mv"]
        assert backing_info.analyze_count == count + 1

    def test_analyze_unknown_table_fails(self):
        db = make_db([(0, 1)])
        with pytest.raises(CatalogError, match="nope"):
            db.execute("analyze nope")

    def test_analyze_trailing_input_fails(self):
        db = make_db([(0, 1)])
        with pytest.raises(SqlSyntaxError):
            db.execute("analyze t extra")
        with pytest.raises(SqlSyntaxError):
            db.execute("analyze 123")


# ----------------------------------------------------------------------
# The use_statistics ablation
# ----------------------------------------------------------------------


class TestAblation:
    SQL = (
        "select d.cat as c, sum(f.qty) as s from fact f, dim1 d "
        "where f.d1_id = d.d1_id and f.d1_id = 0 group by d.cat"
    )

    def test_answers_identical_with_stats_disabled(self):
        db = build_star_database(
            RandomQueryConfig(seed=11, fact_rows=800, dim_rows=40,
                              zipf_skew=1.2)
        )
        with_stats = db.query(self.SQL)
        without = db.query(
            self.SQL, options=OptimizerOptions(use_statistics=False)
        )
        assert sorted(with_stats.rows) == sorted(without.rows)

    def test_disabled_stats_fall_back_to_uniform_ndv(self):
        db = build_star_database(
            RandomQueryConfig(seed=11, fact_rows=800, dim_rows=40,
                              zipf_skew=1.2)
        )
        probe = "select f.qty from fact f where f.d1_id = 0"
        informed = db.query(probe, execute=False).plan.props.rows
        blind = db.query(
            probe,
            options=OptimizerOptions(use_statistics=False),
            execute=False,
        ).plan.props.rows
        # MCVs price the hot key at its true frequency; the blind
        # estimate divides by a rows-sized NDV and lands far lower.
        assert informed > 5 * blind


# ----------------------------------------------------------------------
# Feedback: q-error through explain(analyze=True)
# ----------------------------------------------------------------------


class TestFeedback:
    def test_q_error_symmetry_and_floor(self):
        assert q_error(100, 100) == 1.0
        assert q_error(10, 1000) == q_error(1000, 10) == 100.0
        assert q_error(0.0, 0) == 1.0  # both floored at one row

    def test_median_and_percentile(self):
        values = [1.0, 2.0, 4.0, 8.0]
        assert median(values) == 3.0
        assert percentile(values, 0.95) == 8.0
        assert percentile(values, 0.5) in (2.0, 4.0)

    def test_explain_analyze_reports_q_error(self):
        db = make_db([(i, i % 5) for i in range(200)], nullable=None)
        result = db.query("select t.v, count(t.k) as c from t group by t.v")
        text = result.explain(analyze=True)
        assert "actual rows=" in text
        assert "q=" in text
        records = result.q_errors()
        assert records
        assert all(r.q_error >= 1.0 for r in records)
        assert any("Scan" in r.operator for r in records)


# ----------------------------------------------------------------------
# Workload skew knobs
# ----------------------------------------------------------------------


class TestSkewKnobs:
    def test_zero_skew_keeps_legacy_data_bit_identical(self):
        base = RandomQueryConfig(seed=5, fact_rows=300, dim_rows=30)
        skewless = RandomQueryConfig(
            seed=5, fact_rows=300, dim_rows=30, zipf_skew=0.0,
            hot_category_fraction=0.0,
        )
        rows_a = build_star_database(base).catalog.table("fact").rows
        rows_b = build_star_database(skewless).catalog.table("fact").rows
        assert rows_a == rows_b

    def test_zipf_skew_makes_key_zero_hot(self):
        db = build_star_database(
            RandomQueryConfig(seed=5, fact_rows=2000, dim_rows=50,
                              zipf_skew=1.3)
        )
        counts = [0] * 50
        for row in db.catalog.table("fact").rows:
            counts[row[1]] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 5 * (sum(counts[25:]) / 25)

    def test_hot_category_fraction_concentrates_cat_zero(self):
        db = build_star_database(
            RandomQueryConfig(seed=5, dim_rows=400, categories=8,
                              hot_category_fraction=0.5)
        )
        cats = [row[1] for row in db.catalog.table("dim1").rows]
        assert cats.count(0) > 0.4 * len(cats)


# ----------------------------------------------------------------------
# Collection internals reachable without a Database
# ----------------------------------------------------------------------


class TestAnalyzeTable:
    def test_uniform_preset_reduces_to_system_r(self):
        db = make_db([(i, i % 10) for i in range(1000)], nullable=None)
        table = db.catalog.table("t")
        stats = analyze_table(table, UNIFORM)
        column = stats.column("v")
        assert column.mcvs == ()
        assert column.histogram is None
        assert column.n_distinct == 10

    def test_mcvs_only_for_genuinely_common_values(self):
        # 500 copies of one value against a uniform tail: only the hot
        # value clears the 2x-average bar, so uniform columns carry no
        # MCVs at all and estimates reduce to 1/NDV exactly.
        rows = [(i, 7 if i < 500 else i) for i in range(1000)]
        db = make_db(rows, nullable=None)
        column = db.catalog.stats("t").column("v")
        mcv_values = [value for value, _ in column.mcvs]
        assert mcv_values == [7]
        assert column.mcv_fraction(7) == pytest.approx(0.5)
        uniform = db.catalog.stats("t").column("k")
        assert uniform.mcvs == ()
