"""Differential tests: streaming batch executor vs the legacy row engine.

The batching rewrite (PR 2) must be invisible except for speed: for
every plan the batch executor has to produce the *exact same row list*
(same order, same values) as the row-at-a-time interpreter it replaced
(kept as ``engine.rowexec``), and charge the *exact same page IO* —
reads and writes separately, not just totals. This file drives well
over 100 seeded plans through both engines across every join method,
both group-by methods, optimized multi-join workload plans, and random
canonical queries checked against the brute-force reference.

It also holds the PR's regression tests: the sort-merge-join
input-mutation fix, index-NLJ inner ``actual_rows``, the
``Result.pages`` cache, per-operator metrics surfacing, and the
executor benchmark's smoke configuration.
"""

import io as io_module
import random
import sys
from pathlib import Path

import pytest

from repro import CostParams, Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import ColumnRef, Comparison, col, lit
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode, SortNode
from repro.catalog.schema import table_row_schema
from repro.engine import ExecutionContext, execute_plan, execute_plan_rows
from repro.engine import rowexec
from repro.engine.context import Result
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.optimizer.block import BaseLeaf, BlockOptimizer, GroupingSpec
from repro.workloads import (
    JoinWorkloadConfig,
    RandomQueryConfig,
    build_join_workload,
    random_queries,
)

JOIN_SEEDS = range(6)
GROUP_SEEDS = range(6)
WORKLOAD_SEEDS = range(5)
RANDOM_QUERY_COUNT = 20


def scan(db, table, alias):
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
    )


def assert_engines_agree(db, plan):
    """Run *plan* through all three executors — the legacy interpreter,
    the row-batch engine, and the columnar engine; exact rows, exact IO
    split."""
    legacy_context = ExecutionContext(db.catalog, db.io, db.params)
    with db.io.measure() as span:
        legacy = execute_plan_rows(plan, legacy_context)
    legacy_io = span.delta

    batched = None
    for engine in ("rows", "columnar"):
        batched_context = ExecutionContext(
            db.catalog, db.io, db.params, engine=engine
        )
        with db.io.measure() as span:
            batched = execute_plan(plan, batched_context)
        batched_io = span.delta

        assert batched.rows == legacy.rows, engine
        assert batched_io.page_reads == legacy_io.page_reads, engine
        assert batched_io.page_writes == legacy_io.page_writes, engine
        # the batch paths additionally meter every operator
        assert plan.op_metrics is not None
        assert plan.op_metrics.rows_out == len(batched.rows)
        assert plan.actual_rows == len(batched.rows)
    return batched


# ----------------------------------------------------------------------
# Join methods: 6 seeds x (3 methods x 2 variants + inlj x 2) = 48 plans
# ----------------------------------------------------------------------


def join_db(seed):
    rng = random.Random(seed)
    db = Database(CostParams(memory_pages=4))
    db.create_table("l", [("k", "int"), ("v", "int")])
    db.create_table("r", [("k", "int"), ("w", "int")])
    db.insert(
        "l",
        [
            (rng.randrange(12), rng.randrange(100))
            for _ in range(40 + rng.randrange(40))
        ],
    )
    db.insert(
        "r",
        [
            (rng.randrange(12), rng.randrange(100))
            for _ in range(40 + rng.randrange(40))
        ],
    )
    db.create_index("r_k_idx", "r", ["k"])
    db.analyze()
    return db


def join_plan(db, method, variant):
    residuals = ()
    projection = None
    if variant == "residual":
        residuals = (Comparison("<", col("l.v"), col("r.w")),)
        projection = (("l", "k"), ("r", "w"))
    return JoinNode(
        scan(db, "l", "l"),
        scan(db, "r", "r"),
        method,
        equi_keys=((("l", "k"), ("r", "k")),),
        residuals=residuals,
        projection=projection,
        index_name="r_k_idx" if method == "inlj" else None,
    )


class TestJoinMethodsDifferential:
    @pytest.mark.parametrize("seed", JOIN_SEEDS)
    @pytest.mark.parametrize("method", ["nlj", "hj", "smj", "inlj"])
    @pytest.mark.parametrize("variant", ["plain", "residual"])
    def test_join_method_matches_legacy(self, seed, method, variant):
        db = join_db(seed)
        plan = join_plan(db, method, variant)
        result = assert_engines_agree(db, plan)
        assert result.rows  # seeded key domains guarantee matches

    def test_cross_join_matches_legacy(self):
        db = join_db(0)
        plan = JoinNode(scan(db, "l", "l"), scan(db, "r", "r"), "nlj")
        assert_engines_agree(db, plan)


# ----------------------------------------------------------------------
# Group-by methods: 6 seeds x 2 methods x 2 shapes = 24 plans
# ----------------------------------------------------------------------


def group_db(seed):
    rng = random.Random(1000 + seed)
    db = Database(CostParams(memory_pages=4))
    db.create_table("g", [("a", "int"), ("b", "int"), ("v", "float")])
    db.insert(
        "g",
        [
            (
                rng.randrange(8),
                rng.randrange(5),
                float(rng.randint(0, 100)),
            )
            for _ in range(150 + rng.randrange(100))
        ],
    )
    db.analyze()
    return db


def group_plan(db, method, shape):
    child = scan(db, "g", "g")
    if shape == "single":
        return GroupByNode(
            child,
            group_keys=(("g", "a"),),
            aggregates=(
                ("total", AggregateCall("sum", col("g.v"))),
                ("cnt", AggregateCall("count", None)),
            ),
            method=method,
        )
    return GroupByNode(
        child,
        group_keys=(("g", "a"), ("g", "b")),
        aggregates=(
            ("avg_v", AggregateCall("avg", col("g.v"))),
            ("min_v", AggregateCall("min", col("g.v"))),
            ("max_v", AggregateCall("max", col("g.v"))),
        ),
        having=(Comparison(">", ColumnRef(None, "avg_v"), lit(10.0)),),
        method=method,
    )


class TestGroupByDifferential:
    @pytest.mark.parametrize("seed", GROUP_SEEDS)
    @pytest.mark.parametrize("method", ["hash", "sort"])
    @pytest.mark.parametrize("shape", ["single", "multi"])
    def test_group_by_matches_legacy(self, seed, method, shape):
        db = group_db(seed)
        plan = group_plan(db, method, shape)
        result = assert_engines_agree(db, plan)
        assert result.rows

    @pytest.mark.parametrize("method", ["hash", "sort"])
    def test_sorted_output_matches_legacy(self, method):
        db = group_db(0)
        plan = SortNode(group_plan(db, method, "single"), (("g", "a"),))
        assert_engines_agree(db, plan)


# ----------------------------------------------------------------------
# Optimized multi-join workload plans: 2 topologies x 5 seeds = 10 plans
# ----------------------------------------------------------------------


class TestWorkloadPlansDifferential:
    @pytest.mark.parametrize("topology", ["chain", "star"])
    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
    def test_optimized_plan_matches_legacy(self, topology, seed):
        workload = build_join_workload(
            JoinWorkloadConfig(
                topology=topology, leaves=4, seed=seed, rows_base=120
            )
        )
        optimizer = BlockOptimizer(
            workload.db.catalog, workload.db.params, mode="traditional"
        )
        plan = optimizer.optimize_block(
            [BaseLeaf(ref) for ref in workload.relations],
            workload.predicates,
            GroupingSpec(
                group_keys=workload.group_keys,
                aggregates=workload.aggregates,
            ),
            workload.select,
        )
        assert_engines_agree(workload.db, plan)


# ----------------------------------------------------------------------
# Random canonical queries through the full stack vs brute force: 20
# ----------------------------------------------------------------------


class TestRandomQueriesVsReference:
    def test_random_queries_match_reference(self):
        db, queries = random_queries(
            RandomQueryConfig(seed=7, queries=RANDOM_QUERY_COUNT)
        )
        for query in queries:
            optimization = db.optimize_bound(query)
            result, _ = db.execute_plan(optimization.plan)
            expected = evaluate_canonical(query, db.catalog)
            assert rows_equal_bag(result.rows, expected.rows)


def test_differential_query_count_is_at_least_100():
    joins = len(JOIN_SEEDS) * 4 * 2 + 1
    groups = len(GROUP_SEEDS) * 2 * 2 + 2
    workloads = 2 * len(WORKLOAD_SEEDS)
    total = joins + groups + workloads + RANDOM_QUERY_COUNT
    assert total >= 100


# ----------------------------------------------------------------------
# Regression: sort-merge join must not mutate its inputs
# ----------------------------------------------------------------------


class TestSortMergeJoinMutation:
    def test_smj_leaves_input_results_untouched(self):
        db = join_db(3)
        plan = join_plan(db, "smj", "plain")
        context = ExecutionContext(db.catalog, db.io, db.params)
        left = execute_plan_rows(plan.left, context)
        right = execute_plan_rows(plan.right, context)
        left_before = list(left.rows)
        right_before = list(right.rows)
        assert left_before != sorted(left_before)  # sort would reorder

        joined = rowexec._sort_merge_join(plan, context, left, right)

        assert left.rows == left_before
        assert right.rows == right_before
        hashed = execute_plan(join_plan(db, "hj", "plain"),
                              ExecutionContext(db.catalog, db.io, db.params))
        assert rows_equal_bag(joined, hashed.rows)


# ----------------------------------------------------------------------
# Regression: index NLJ records the inner scan's actual rows
# ----------------------------------------------------------------------


class TestIndexNljActuals:
    def test_inner_scan_actual_rows_recorded(self):
        db = join_db(1)
        plan = join_plan(db, "inlj", "plain")
        context = ExecutionContext(db.catalog, db.io, db.params)
        result = execute_plan(plan, context)
        assert plan.right.actual_rows == len(result.rows)
        assert plan.right.op_metrics is not None
        assert plan.right.op_metrics.rows_out == len(result.rows)
        assert "index probe" in plan.right.op_metrics.label


# ----------------------------------------------------------------------
# Regression: Result.pages is cached, and invalidates on growth
# ----------------------------------------------------------------------


class TestResultPagesCache:
    def test_pages_cached_until_row_count_changes(self, monkeypatch):
        db = join_db(0)
        context = ExecutionContext(db.catalog, db.io, db.params)
        result = execute_plan(scan(db, "l", "l"), context)
        first = result.pages

        calls = []
        from repro.engine import context as context_module

        real_pages_for = context_module.pages_for

        def counting_pages_for(rows, width):
            calls.append((rows, width))
            return real_pages_for(rows, width)

        monkeypatch.setattr(
            context_module, "pages_for", counting_pages_for
        )
        assert result.pages == first
        assert result.pages == first
        assert calls == []  # served from the cache

        result.rows.append(result.rows[0])
        grown = result.pages
        assert calls  # recomputed exactly because the row count moved
        assert grown == real_pages_for(
            len(result.rows), result.schema.width
        )


# ----------------------------------------------------------------------
# Metrics surfacing: explain(analyze=True) and the CLI --stats flag
# ----------------------------------------------------------------------


class TestMetricsSurfacing:
    def test_metrics_cover_every_operator(self):
        db = join_db(2)
        plan = join_plan(db, "hj", "residual")
        context = ExecutionContext(db.catalog, db.io, db.params)
        execute_plan(plan, context)
        assert context.metrics is not None
        labels = [op.label for op in context.metrics.operators]
        assert len(labels) == 3  # join + both scans
        for op in context.metrics.operators:
            assert op.rows_out >= 0
            assert op.seconds >= 0.0
            assert op.self_seconds >= 0.0

    def test_explain_analyze_shows_batch_metrics(self):
        from repro.algebra.plan import explain

        db = group_db(1)
        plan = group_plan(db, "hash", "single")
        context = ExecutionContext(db.catalog, db.io, db.params)
        execute_plan(plan, context)
        text = explain(plan, analyze=True)
        assert "actual rows=" in text
        assert "batches=" in text

    def test_shell_stats_prints_exec_section(self):
        from repro.cli import Shell, make_demo_database

        out = io_module.StringIO()
        shell = Shell(make_demo_database(), out=out, show_stats=True)
        shell.handle("select e.sal from emp e where e.age < 30;")
        text = out.getvalue()
        assert "stats: " in text
        assert "exec:" in text
        assert "rows=" in text
        assert "batches=" in text

    def test_query_result_carries_exec_metrics(self):
        db = group_db(2)
        result = db.query("select g.a, sum(g.v) from g group by g.a")
        assert result.exec_metrics is not None
        assert result.exec_metrics.operators
        assert result.exec_metrics.operators[0].rows_out == len(
            result.rows
        )


# ----------------------------------------------------------------------
# Benchmark smoke: both engines agree on the bench workloads in CI
# ----------------------------------------------------------------------


class TestBenchExecutorSmoke:
    def test_bench_smoke_configuration(self):
        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        try:
            from bench_executor import run_bench
        finally:
            sys.path.pop(0)
        # run_bench itself raises on any row or IO disagreement
        results = run_bench(smoke=True, repeats=1)
        assert len(results["entries"]) == 5
        assert results["machine"]["python_version"]
        for entry in results["entries"]:
            assert entry["rows"] > 0
            assert entry["columnar_seconds"] > 0
            assert entry["speedup_columnar_vs_batched"] > 0
