-- corpus regression: distinct_agg_args.sql
-- pins: several aggregates over the same column (and arithmetic
-- variants of it) coexist in one grouped select -- the binder
-- rejects exact duplicates, so near-duplicates must all bind.
create table t1 (c0 int, c1 int);
insert into t1 values (1, 3), (1, 5), (2, 7), (2, 9), (2, 11);
select r1.c0 as x1, sum(r1.c1) as x2, avg(r1.c1) as x3, min(r1.c1) as x4, max(r1.c1) as x5, count(r1.c1) as x6, sum(r1.c1 + 0) as x7 from t1 r1 group by r1.c0;
