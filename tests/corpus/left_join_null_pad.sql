-- corpus regression: left_join_null_pad.sql
-- pins: LEFT JOIN padding -- unmatched outer rows survive with NULLs
-- on the inner side; count(inner.col) skips the padding while
-- count(*) counts it, a WHERE on the padded side drops the padded
-- rows, and an extra ON conjunct fails rows into padding rather
-- than filtering them after the join.
create table t1 (c0 int, c1 int);
create table t2 (c0 int, c2 int null);
insert into t1 values (1, 10), (2, 20), (3, 30);
insert into t2 values (1, 100), (1, 101), (3, null);
select r1.c0 as x1, r2.c2 as x2 from t1 r1 left join t2 r2 on r1.c0 = r2.c0;
select r1.c0 as x1, count(r2.c2) as x2, count(*) as x3 from t1 r1 left join t2 r2 on r1.c0 = r2.c0 group by r1.c0;
select r1.c0 as x1, r2.c2 as x2 from t1 r1 left join t2 r2 on r1.c0 = r2.c0 and r2.c2 > 100;
select r1.c0 as x1 from t1 r1 left join t2 r2 on r1.c0 = r2.c0 where r2.c0 is null;
