-- corpus regression: null_group_key.sql
-- pins: NULL grouping keys form their own single group in every
-- executor (hash groups, sorted groups) and match SQLite.
create table t1 (c0 int null, c1 int);
insert into t1 values (1, 10), (null, 20), (null, 30), (2, 40), (1, 50);
select r1.c0 as x1, count(*) as x2, sum(r1.c1) as x3 from t1 r1 group by r1.c0;
select r1.c0 as x1, min(r1.c1) as x2 from t1 r1 group by r1.c0 having count(*) > 1;
