-- corpus regression: with_view_join.sql
-- pins: WITH-view outputs join against base tables and group
-- correctly under every optimizer level and both executors.
create table t1 (c0 int, c1 int);
insert into t1 values (1, 10), (2, 20), (1, 30), (3, 2);
with v1(k0, v0) as (select r1.c0 as k0, sum(r1.c1) as v0 from t1 r1 group by r1.c0) select r2.k0 as x1, r3.c1 as x2 from v1 r2, t1 r3 where r2.k0 = r3.c0;
with v2(k0, v0) as (select r1.c0 as k0, count(*) as v0 from t1 r1 group by r1.c0) select r2.v0 as x1, count(*) as x2 from v2 r2 group by r2.v0;
