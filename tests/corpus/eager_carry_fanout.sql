-- corpus regression: eager_carry_fanout.sql
-- pins: COUNT-carry pre-collapse of a duplicate-rich probe side must
-- reproduce join multiplicity exactly at the merge group-by: the
-- carry weights SUM (sum * __cnt), COUNT(*) (sum of __cnt), and
-- COUNT(x) (carry per non-NULL x) while MIN passes through unchanged.
-- Adopted under the weighted-cost config; every config must agree.
create table emp (eno int, dno int, sal float, age int null);
create table pay (pno int, dno int);
insert into emp values (1, 0, 10.25, 30), (2, 0, 4.5, null), (3, 1, 7.75, 41), (4, 1, 1.25, null), (5, 2, 9.0, 28), (6, 2, 2.5, 55), (7, 0, 3.25, 22), (8, 1, 8.5, 37), (9, 2, 6.75, null), (10, 0, 5.0, 44);
insert into pay values (1, 0), (2, 0), (3, 0), (4, 0), (5, 1), (6, 1), (7, 1), (8, 2), (9, 2), (10, 2), (11, 2), (12, 2), (13, 0), (14, 1), (15, 2);
analyze;
select e.dno as x1, sum(e.sal) as x2, count(*) as x3, count(e.age) as x4, min(e.sal) as x5 from emp e, pay p where e.dno = p.dno group by e.dno;
