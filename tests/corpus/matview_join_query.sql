-- corpus regression: matview_join_query.sql
-- pins: joining a materialized view to its base table binds the
-- view's output columns (the generator once emitted c0-named join
-- keys against views that only expose xN columns).
create table t1 (c0 int, c1 int);
insert into t1 values (1, 10), (2, 20), (1, 30), (2, 40), (10, 5);
create materialized view mv1 as select r1.c0 as x1, count(*) as x2 from t1 r1 group by r1.c0;
select r2.x1 as x3, r3.c1 as x4 from mv1 r2, t1 r3 where r2.x2 = r3.c0;
select r2.x1 as x5, sum(r3.c1) as x6 from mv1 r2, t1 r3 where r2.x1 = r3.c0 group by r2.x1;
