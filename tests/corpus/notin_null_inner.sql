-- corpus regression: notin_null_inner.sql
-- pins: NOT IN with a NULL in the subquery result -- three-valued
-- logic makes every membership verdict FALSE or UNKNOWN, so the
-- answer is empty; the null-aware anti join, the naive mark join
-- (decorrelation off), and SQLite must all agree. Filtering the
-- NULLs away inside the subquery restores ordinary anti-join
-- semantics.
create table t1 (c0 int, c1 int null);
insert into t1 values (1, 1), (2, null), (3, 2), (4, 1);
select r1.c0 as x1 from t1 r1 where r1.c0 not in (select s1.c1 from t1 s1);
select r1.c0 as x1 from t1 r1 where r1.c0 not in (select s1.c1 from t1 s1 where s1.c1 is not null);
select r1.c0 as x1 from t1 r1 where r1.c1 not in (select s1.c1 from t1 s1 where s1.c1 is not null);
