-- corpus regression: three_valued_logic.sql
-- pins: SQL three-valued logic -- comparisons with NULL are
-- unknown, so WHERE drops those rows; BETWEEN and IN over NULL
-- operands behave the same as SQLite.
create table t1 (c0 int null, c1 int null);
insert into t1 values (1, 2), (null, 3), (4, null), (null, null), (5, 6);
select r1.c1 as x1 from t1 r1 where r1.c0 > 0;
select r1.c0 as x1 from t1 r1 where r1.c0 between 1 and 4;
select r1.c0 as x1 from t1 r1 where r1.c1 in (2, 6);
select r1.c0 as x1, r1.c1 as x2 from t1 r1 where r1.c0 = r1.c1;
