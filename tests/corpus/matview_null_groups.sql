-- corpus regression: matview_null_groups.sql
-- pins: materialized views group NULL keys like queries do; the
-- view's backing table stores NULL keys and NULL partials (backing
-- columns used to be declared NOT NULL and refresh crashed).
create table t1 (c0 int null, c1 int null);
insert into t1 values (1, 10), (null, 20), (2, null), (null, 30), (2, null);
create materialized view mv1 as select r1.c0 as x1, count(*) as x2, sum(r1.c1) as x3 from t1 r1 group by r1.c0;
select r2.x1 as x4, r2.x2 as x5, r2.x3 as x6 from mv1 r2;
insert into t1 values (null, 40), (2, 5);
refresh materialized view mv1;
select r3.x1 as x7, r3.x3 as x8 from mv1 r3;
