-- corpus regression: eager_null_count_merge.sql
-- pins: a group whose counted column is entirely NULL must finalize
-- to COUNT = 0 (never NULL) through the eager partial merge — the
-- COUNT decomposition's IFNULL finalizer; SUM/AVG over the same
-- all-NULL group stay NULL; HAVING filters on the finalized value.
create table t1 (c0 int, c1 int null, c2 float null);
create table t2 (c0 int, c3 int);
insert into t1 values (0, null, null), (0, null, null), (1, 4, 2.5), (1, null, 1.25), (2, 7, null), (2, 2, 3.75), (0, null, null), (1, 6, 0.5);
insert into t2 values (0, 10), (0, 11), (1, 12), (1, 13), (2, 14), (0, 15), (2, 16), (1, 17), (2, 18);
analyze;
select r1.c0 as x1, count(r1.c1) as x2, sum(r1.c2) as x3, avg(r1.c2) as x4 from t1 r1, t2 r2 where r1.c0 = r2.c0 group by r1.c0;
select r1.c0 as x1, count(r1.c2) as x2 from t1 r1, t2 r2 where r1.c0 = r2.c0 group by r1.c0 having count(r1.c1) >= 0;
