-- corpus regression: null_index_probe.sql
-- pins: ordered indexes exclude NULL keys (a NULL never satisfies
-- an equality probe) while IS NULL predicates still see the NULL
-- rows via scans; index-nested-loop probes skip NULL outer keys.
create table t1 (c0 int null, c1 int);
insert into t1 values (1, 10), (null, 20), (1, 30), (2, 40), (null, 50);
create index ix1 on t1 (c0);
select r1.c1 as x1 from t1 r1 where r1.c0 = 1;
select r1.c1 as x1 from t1 r1 where r1.c0 is null;
select r1.c1 as x1 from t1 r1 where r1.c0 is not null;
