-- corpus regression: null_skip_aggregates.sql
-- pins: aggregates skip NULL inputs; count(col) vs count(*) differ;
-- an all-NULL group yields NULL for sum/avg/min/max (not 0, not an
-- error -- the seed engine raised PlanError on empty aggregate input).
create table t1 (c0 int, c1 int null, c2 float null);
insert into t1 values (1, null, null), (1, null, null), (2, 5, 1.25), (2, null, 0.5), (3, 7, null);
select r1.c0 as x1, count(*) as x2, count(r1.c1) as x3, sum(r1.c1) as x4, avg(r1.c2) as x5, min(r1.c1) as x6, max(r1.c2) as x7 from t1 r1 group by r1.c0;
