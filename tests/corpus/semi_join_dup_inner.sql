-- corpus regression: semi_join_dup_inner.sql
-- pins: semi-join multiplicity -- IN must emit each qualifying outer
-- row exactly once however many inner duplicates match, and EXISTS
-- must behave identically; a grouped query on top must see
-- un-duplicated counts.
create table t1 (c0 int, c1 int);
create table t2 (c0 int);
insert into t1 values (1, 10), (2, 20), (2, 21), (3, 30);
insert into t2 values (2), (2), (2), (3);
select r1.c0 as x1, r1.c1 as x2 from t1 r1 where r1.c0 in (select s1.c0 from t2 s1);
select r1.c0 as x1, r1.c1 as x2 from t1 r1 where exists (select s1.c0 from t2 s1 where s1.c0 = r1.c0);
select r1.c0 as x1, count(*) as x2 from t1 r1 where r1.c0 in (select s1.c0 from t2 s1) group by r1.c0;
