-- corpus regression: empty_group_scan.sql
-- pins: grouped aggregation over an empty input produces zero
-- groups; a WHERE that filters everything behaves the same.
create table t1 (c0 int, c1 int);
create table t2 (c0 int, c1 int);
insert into t2 values (1, 2), (3, 4);
select r1.c0 as x1, count(*) as x2 from t1 r1 group by r1.c0;
select r2.c0 as x1, sum(r2.c1) as x2 from t2 r2 where r2.c0 > 100 group by r2.c0;
