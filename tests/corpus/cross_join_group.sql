-- corpus regression: cross_join_group.sql
-- pins: relations with no shared column type stay cross-joined
-- (the generator's old fallback invented invalid join predicates);
-- grouped aggregation over a cross product agrees everywhere.
create table t1 (c0 int);
create table t2 (c1 str);
insert into t1 values (1), (2), (3);
insert into t2 values ('a'), ('b');
select r2.c1 as x1, count(*) as x2, sum(r1.c0) as x3 from t1 r1, t2 r2 group by r2.c1;
