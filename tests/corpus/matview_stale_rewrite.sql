-- corpus regression: matview_stale_rewrite.sql
-- pins: a query between insert and refresh must not be answered
-- from the stale view snapshot -- rewrite on/off configs and the
-- oracle all see the post-insert rows.
create table t1 (c0 int, c1 int);
insert into t1 values (1, 10), (2, 20), (1, 30);
create materialized view mv1 as select r1.c0 as x1, sum(r1.c1) as x2, count(*) as x3 from t1 r1 group by r1.c0;
insert into t1 values (1, 40), (3, 50);
select r2.c0 as x4, sum(r2.c1) as x5, count(*) as x6 from t1 r2 group by r2.c0;
refresh materialized view mv1;
select r3.c0 as x7, sum(r3.c1) as x8 from t1 r3 group by r3.c0;
