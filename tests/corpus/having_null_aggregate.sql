-- corpus regression: having_null_aggregate.sql
-- pins: HAVING compares against a NULL aggregate (all-NULL group)
-- with three-valued logic -- the group is dropped, not errored.
create table t1 (c0 int, c1 int null);
insert into t1 values (1, null), (1, null), (2, 5), (2, 7), (3, 1);
select r1.c0 as x1, sum(r1.c1) as x2 from t1 r1 group by r1.c0 having sum(r1.c1) > 0;
select r1.c0 as x1, count(r1.c1) as x2 from t1 r1 group by r1.c0 having count(r1.c1) = 0;
