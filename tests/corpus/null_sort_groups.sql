-- corpus regression: null_sort_groups.sql
-- pins: sort-based grouping orders NULL keys consistently
-- (NullOrdered wrapper); mixed NULL/value keys in multi-key
-- group-bys agree across batch, rowexec, and SQLite.
create table t1 (c0 int null, c1 str null, c2 int);
insert into t1 values (1, 'a', 10), (null, 'a', 20), (1, null, 30), (null, null, 40), (1, 'a', 50), (null, 'a', 60);
select r1.c0 as x1, r1.c1 as x2, count(*) as x3, sum(r1.c2) as x4 from t1 r1 group by r1.c0, r1.c1;
