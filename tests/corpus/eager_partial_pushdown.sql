-- corpus regression: eager_partial_pushdown.sql
-- pins: partial aggregates computed below the join (the side holding
-- every aggregate argument collapses on the join key) must coalesce
-- and finalize above it to the lazy plan's exact answer — including
-- AVG's sum/count finalize division over a fan-out join.
create table dept (dno int, region int);
create table bonus (bno int, dno int, amt float);
insert into dept values (0, 0), (1, 0), (2, 1), (3, 1);
insert into bonus values (1, 0, 2.25), (2, 0, 4.0), (3, 0, 1.75), (4, 1, 3.5), (5, 1, 0.25), (6, 2, 5.0), (7, 2, 2.0), (8, 2, 7.25), (9, 3, 1.0), (10, 3, 6.5), (11, 0, 3.0), (12, 1, 4.75), (13, 2, 0.5), (14, 3, 2.5), (15, 3, 8.0);
analyze;
select d.region as x1, sum(b.amt) as x2, avg(b.amt) as x3, max(b.amt) as x4, count(b.amt) as x5 from dept d, bonus b where d.dno = b.dno group by d.region;
