-- corpus regression: null_join_keys.sql
-- pins: NULL equi-join keys never match -- not even NULL = NULL --
-- in hash join, nested loops, and sort-merge (rowexec sorts join
-- input by key, so unfiltered NULLs used to TypeError).
create table t1 (c0 int null, c1 int);
create table t2 (c0 int null, c2 int);
insert into t1 values (1, 10), (null, 20), (2, 30), (null, 40);
insert into t2 values (1, 100), (null, 200), (3, 300), (null, 400);
select r1.c1 as x1, r2.c2 as x2 from t1 r1, t2 r2 where r1.c0 = r2.c0;
select r1.c0 as x1, count(*) as x2 from t1 r1, t2 r2 where r1.c0 = r2.c0 group by r1.c0;
