-- corpus regression: scalar_count_empty.sql
-- pins: the COUNT bug (Kim) -- a correlated COUNT subquery over an
-- empty group must compare as 0, not vanish: the decorrelated plan
-- LEFT-joins the counting view and IFNULLs the result, matching the
-- naive mark join and SQLite. SUM over an empty group stays NULL,
-- so its comparison is UNKNOWN and the row drops.
create table t1 (c0 int, c1 int);
create table t2 (c0 int, c1 int);
insert into t1 values (1, 10), (2, 20), (3, 30);
insert into t2 values (1, 5), (1, 6), (3, 7);
select r1.c0 as x1 from t1 r1 where (select count(s1.c0) from t2 s1 where s1.c0 = r1.c0) = 0;
select r1.c0 as x1 from t1 r1 where (select count(s1.c0) from t2 s1 where s1.c0 = r1.c0) >= 1;
select r1.c0 as x1 from t1 r1 where (select sum(s1.c1) from t2 s1 where s1.c0 = r1.c0) > 4;
