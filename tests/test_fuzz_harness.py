"""Unit tests for the differential fuzzing subsystem itself."""

import json

import pytest

from repro.testing import (
    CONFIGS,
    PROFILES,
    check_script,
    generate_script,
    load_corpus_script,
    needs_reference,
    render_script,
    run_fuzz,
    shrink_script,
)
from repro.testing.metamorphic import EngineConfig
from repro.testing.runner import (
    classify_statement,
    parse_corpus_sql,
    write_corpus_case,
)
from repro.testing.shrink import Shrinker
from repro.testing.sqlgen import Stmt


class TestGenerator:
    def test_deterministic_per_seed(self):
        first = render_script(generate_script(11, PROFILES["smoke"]))
        second = render_script(generate_script(11, PROFILES["smoke"]))
        assert first == second

    def test_seeds_differ(self):
        scripts = {
            render_script(generate_script(seed, PROFILES["smoke"]))
            for seed in range(5)
        }
        assert len(scripts) == 5

    def test_script_shape(self):
        script = generate_script(0, PROFILES["smoke"])
        kinds = [stmt.kind for stmt in script]
        assert kinds[0] == "create"
        assert "insert" in kinds
        assert kinds.count("query") == PROFILES["smoke"].queries
        # every statement classifies back to its own kind
        for stmt in script:
            assert classify_statement(stmt.render()) == stmt.kind

    def test_render_parse_roundtrip(self, tmp_path):
        script = generate_script(3, PROFILES["smoke"])
        path = write_corpus_case(
            tmp_path, 3, "smoke", script, "rows", "full-batch", "detail\nx"
        )
        loaded = load_corpus_script(path)
        assert [s.kind for s in loaded] == [s.kind for s in script]
        assert [s.render() for s in loaded] == [
            s.render() for s in script
        ]

    def test_parse_corpus_strips_comments(self):
        statements = parse_corpus_sql(
            "-- header\ncreate table t (a int);\n-- note\nselect 1"
        )
        assert statements == ["create table t (a int)", "select 1"]


class TestCheckScript:
    def test_clean_seed(self):
        report = check_script(generate_script(0, PROFILES["smoke"]))
        assert report.ok
        assert report.queries_checked == PROFILES["smoke"].queries
        assert report.configs_run == len(CONFIGS)

    def test_detects_error_divergence(self):
        """A config whose optimizer does not exist errors on every
        query — the harness must report it, not swallow it."""
        script = [
            Stmt("create", "create table t (a int)"),
            Stmt("insert", "insert into t values (1), (2)"),
            Stmt("query", "select t.a as x from t t"),
        ]
        bogus = EngineConfig("bogus", optimizer="nosuch")
        report = check_script(script, configs=(CONFIGS[0], bogus))
        assert not report.ok
        kinds = {d.signature for d in report.divergences}
        assert ("error", "bogus") in kinds

    def test_setup_error_reported(self):
        script = [Stmt("insert", "insert into ghost values (1)")]
        report = check_script(script)
        assert not report.ok
        assert report.divergences[0].kind == "setup-error"

    def test_needs_reference(self):
        assert needs_reference("select stddev(t.a) from t t")
        assert needs_reference("select median(t.a) from t t")
        assert not needs_reference("select sum(t.a) from t t")


def _failing_script():
    """A script that diverges under a bogus-optimizer config, plus the
    check function preserving that signature."""
    script = [
        Stmt("create", "create table t (a int, b int)"),
        Stmt("create", "create table spare (c int)"),
        Stmt("insert", "insert into t values (1, 2), (3, 4)"),
        Stmt("insert", "insert into spare values (9)"),
        Stmt("query", "select t.b as x from t t"),
    ]
    bogus = EngineConfig("bogus", optimizer="nosuch")
    signature = ("error", "bogus")

    def check(candidate):
        report = check_script(candidate, configs=(CONFIGS[0], bogus))
        for divergence in report.divergences:
            # keep the signature precise: a missing table also errors
            # under the bogus config, but with a BindError detail
            if (
                divergence.signature == signature
                and "unknown optimizer" in divergence.detail
            ):
                return signature
        return None

    return script, check


class TestShrinker:
    def test_shrinks_to_minimal_repro(self):
        script, check = _failing_script()
        shrunk = shrink_script(script, check)
        # minimal: the table the query needs, plus the query
        assert [s.kind for s in shrunk] == ["create", "query"]
        assert "spare" not in render_script(shrunk)

    def test_rejects_passing_input(self):
        _, check = _failing_script()
        passing = [Stmt("create", "create table t (a int)")]
        with pytest.raises(ValueError):
            shrink_script(passing, check)

    def test_budget_returns_best_so_far(self):
        script, check = _failing_script()
        shrinker = Shrinker(script, check, max_checks=2)
        result = shrinker.run()
        assert shrinker.budget_exhausted
        # still fails with the original signature
        assert check(result) == ("error", "bogus")

    def test_synthetic_ddmin(self):
        """ddmin over a pure-statement failure condition: needs both
        marker statements, nothing else."""
        script = [Stmt("query", f"select {i}") for i in range(12)]

        def check(candidate):
            texts = {stmt.sql for stmt in candidate}
            if "select 3" in texts and "select 9" in texts:
                return "both"
            return None

        shrunk = shrink_script(script, check)
        assert sorted(s.sql for s in shrunk) == ["select 3", "select 9"]


class TestRunFuzz:
    def test_clean_run_reports(self):
        report = run_fuzz(seeds=2, profile="smoke")
        assert report.ok
        assert report.seeds_run == 2
        assert report.queries_checked == 2 * PROFILES["smoke"].queries
        decoded = json.loads(report.to_json())
        assert decoded["seeds_planned"] == 2
        assert decoded["divergences"] == []

    def test_duration_cap_stops_early(self):
        report = run_fuzz(seeds=500, profile="smoke", duration=0.0)
        assert report.stopped_by_duration
        assert report.seeds_run < 500

    def test_divergence_is_shrunk_and_archived(self, tmp_path, monkeypatch):
        """When a check diverges, the runner shrinks the script and
        writes a self-contained corpus file."""
        from repro.testing import metamorphic, runner

        bogus = EngineConfig("bogus", optimizer="nosuch")
        patched_configs = (CONFIGS[0], bogus)

        def patched_check(script, configs=patched_configs, **kwargs):
            return metamorphic.check_script(script, configs=configs)

        monkeypatch.setattr(runner, "check_script", patched_check)
        report = runner.run_fuzz(
            seeds=1, profile="smoke", corpus_dir=tmp_path
        )
        assert not report.ok
        record = report.divergences[0]
        assert record.kind == "error" and record.config == "bogus"
        assert record.shrunk_statements <= record.original_statements
        assert record.corpus_path is not None
        # the archived case replays to the same divergence
        replay = load_corpus_script(tmp_path / record.corpus_path.split("/")[-1])
        replay_report = metamorphic.check_script(
            replay, configs=patched_configs
        )
        assert ("error", "bogus") in {
            d.signature for d in replay_report.divergences
        }

    def test_one_record_per_signature(self, monkeypatch):
        """Many queries failing the same way collapse into one record."""
        from repro.testing import metamorphic, runner

        bogus = EngineConfig("bogus", optimizer="nosuch")

        def patched_check(script, **kwargs):
            return metamorphic.check_script(
                script, configs=(CONFIGS[0], bogus)
            )

        monkeypatch.setattr(runner, "check_script", patched_check)
        report = runner.run_fuzz(seeds=1, profile="smoke", shrink=False)
        assert len(report.divergences) == 1
