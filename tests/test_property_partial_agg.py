"""Property tests for the aggregate decomposability protocol.

For every decomposable aggregate the protocol must satisfy, over any
partitioning of the input and any merge order::

    final(coalesce(partial(A), partial(B), ...)) == direct(A ∪ B ∪ ...)

with the partitions free to be empty, all-NULL, NULL-bearing, or
single-row. The same associativity must hold one level down for the
runtime accumulators' ``merge``. Float data is restricted to dyadic
rationals (multiples of 0.25) so every sum is exact in binary and the
comparison is *exact equality* — merge order genuinely cannot matter.

A protocol gap this suite pinned: SUM-coalescing a COUNT partial over
zero contributing rows yields NULL where COUNT must return 0 — the
COUNT decomposition's finalizer coerces with IFNULL(x, 0).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.algebra.aggregates import (
    aggregate_function,
    known_aggregates,
)
from repro.algebra.expressions import ColumnRef, Literal

PROBE = ColumnRef("t", "c")
PROBE_KEY = ("t", "c")

# Snapshot the registry at import: tests elsewhere may register
# throwaway UDFs whose accumulators don't honor the merge contract.
BUILTIN_AGGREGATES = tuple(known_aggregates())

DECOMPOSABLE = [
    name
    for name in BUILTIN_AGGREGATES
    if aggregate_function(name).decomposable
]

# NULLs, small ints, and dyadic floats (exact in binary)
values = st.one_of(
    st.none(),
    st.integers(min_value=-10, max_value=10),
    st.integers(min_value=-160, max_value=160).map(lambda n: n * 0.25),
)
partitions = st.lists(
    st.lists(values, max_size=8), min_size=0, max_size=5
)


def evaluate(expression):
    """Evaluate a column-free expression (post-substitution)."""
    return expression.bind(None)(())


def run_partial(call, rows):
    """One partial aggregate over one partition's raw values."""
    accumulator = call.function().make_accumulator()
    for value in rows:
        if call.arg is None:  # COUNT(*): every row counts
            accumulator.add(True)
        else:
            argument = call.arg.substitute({PROBE_KEY: Literal(value)})
            accumulator.add(evaluate(argument))
    return accumulator.value()


def run_direct(name, rows):
    accumulator = aggregate_function(name).make_accumulator()
    for value in rows:
        accumulator.add(True if name == "count_star" else value)
    return accumulator.value()


def decomposed_route(name, parts, order):
    """partial per partition -> coalesce in *order* -> finalize."""
    function = aggregate_function(name)
    decomposition = function.decompose(PROBE)
    partial_tables = [
        [run_partial(call, rows) for call in decomposition.partials]
        for rows in parts
    ]
    coalesced = []
    for position, coalescer in enumerate(decomposition.coalescers):
        upper = aggregate_function(coalescer).make_accumulator()
        for index in order:
            upper.add(partial_tables[index][position])
        coalesced.append(upper.value())
    final = decomposition.finalize(
        [Literal(value) for value in coalesced]
    )
    return evaluate(final)


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_decomposed_equals_direct(data):
    parts = data.draw(partitions)
    order = data.draw(st.permutations(range(len(parts))))
    flat = [value for rows in parts for value in rows]
    for name in DECOMPOSABLE:
        direct = run_direct(name, flat)
        routed = decomposed_route(name, parts, list(order))
        assert routed == direct, (
            f"{name}: decomposed route {routed!r} != direct {direct!r} "
            f"over {parts!r} merged in order {order!r}"
        )


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_accumulator_merge_is_order_independent(data):
    """merge() itself — one level below the decomposition — must agree
    with single-pass accumulation under any fold order, for *every*
    registered aggregate (holistic MEDIAN included)."""
    parts = data.draw(partitions)
    order = data.draw(st.permutations(range(len(parts))))
    flat = [value for rows in parts for value in rows]
    for name in BUILTIN_AGGREGATES:
        function = aggregate_function(name)
        direct = function.make_accumulator()
        for value in flat:
            direct.add(value)
        merged = function.make_accumulator()
        for index in order:
            piece = function.make_accumulator()
            for value in parts[index]:
                piece.add(value)
            merged.merge(piece)
        assert merged.value() == direct.value(), (
            f"{name}: merged fold {merged.value()!r} != "
            f"direct {direct.value()!r} over {parts!r}"
        )


def test_count_star_decomposition_over_partitions():
    """COUNT(*) decomposes with a NULL argument; partial counts must
    sum across partitions and finalize to an exact row total."""
    decomposition = aggregate_function("count").decompose(None)
    parts = [[1, None, 3], [], [None]]
    partials = [
        run_partial(call, rows)
        for rows in parts
        for call in decomposition.partials
    ]
    upper = aggregate_function(decomposition.coalescers[0]).make_accumulator()
    for value in partials:
        upper.add(value)
    final = decomposition.finalize([Literal(upper.value())])
    assert evaluate(final) == 4  # COUNT(*) counts NULL rows too


def test_empty_and_all_null_edges():
    """The edges that caught the SUM-of-COUNT-partials gap: no
    partitions at all, and partitions holding only NULLs."""
    for parts in ([], [[], []], [[None], [None, None]]):
        flat = [value for rows in parts for value in rows]
        for name in DECOMPOSABLE:
            direct = run_direct(name, flat)
            routed = decomposed_route(name, parts, range(len(parts)))
            assert routed == direct
            if name == "count":
                assert routed == 0  # 0, never NULL
            else:
                assert routed is None  # SQL: no non-NULL input


def test_single_row_partitions():
    parts = [[2.5], [None], [7]]
    flat = [2.5, None, 7]
    for name in DECOMPOSABLE:
        assert decomposed_route(name, parts, [2, 0, 1]) == run_direct(
            name, flat
        )


def test_stddev_merge_of_empty_partials_is_null():
    """STDDEV over only-empty partitions must finalize to NULL (its
    FuncCall finalizer NULL-propagates), not raise on NULL division."""
    assert decomposed_route("stddev", [[], [None]], [0, 1]) is None
    value = decomposed_route("stddev", [[1, 3], []], [1, 0])
    assert value is not None
    assert math.isclose(value, 1.0)
