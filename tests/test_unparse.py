"""Tests for the SQL unparser: emitted text re-binds to an equivalent
query (round-trip property)."""

import pytest

from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.errors import UnsupportedFeatureError
from repro.sql import bind_sql
from repro.sql.unparse import expression_to_sql, query_to_sql
from repro.algebra.expressions import Literal, col, Comparison


ROUND_TRIP_QUERIES = [
    "select e.sal from emp e where e.age < 30",
    "select e.dno, avg(e.sal) as a from emp e group by e.dno",
    "select e.dno, sum(e.sal) as s from emp e group by e.dno "
    "having sum(e.sal) > 1000",
    """
    with v(dno, asal) as (
        select e.dno, avg(e.sal) from emp e group by e.dno
    )
    select d.budget, v.asal from dept d, v where d.dno = v.dno
    """,
    "select e.sal from emp e where e.dno in (1, 2) "
    "order by sal desc limit 5",
    "select e1.sal from emp e1 where e1.age < 25 and e1.sal > "
    "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
]


class TestExpressionUnparse:
    def test_string_literal_quoted(self):
        assert expression_to_sql(Literal("o'brien")) == "'o''brien'"

    def test_booleans(self):
        assert expression_to_sql(Literal(True)) == "true"
        assert expression_to_sql(Literal(False)) == "false"

    def test_comparison(self):
        text = expression_to_sql(Comparison("<", col("e.age"), Literal(22)))
        assert text == "(e.age < 22)"

    def test_rid_refuses(self):
        with pytest.raises(UnsupportedFeatureError):
            expression_to_sql(col("e._rid"))


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_rebinds_to_equivalent_query(self, emp_dept_db, sql):
        original = bind_sql(sql, emp_dept_db.catalog)
        emitted = query_to_sql(original)
        rebound = bind_sql(emitted, emp_dept_db.catalog)
        first = evaluate_canonical(original, emp_dept_db.catalog)
        second = evaluate_canonical(rebound, emp_dept_db.catalog)
        assert rows_equal_bag(first.rows, second.rows), emitted

    def test_order_and_limit_preserved_exactly(self, emp_dept_db):
        sql = "select e.sal from emp e order by sal desc limit 3"
        original = bind_sql(sql, emp_dept_db.catalog)
        rebound = bind_sql(query_to_sql(original), emp_dept_db.catalog)
        assert (
            evaluate_canonical(original, emp_dept_db.catalog).rows
            == evaluate_canonical(rebound, emp_dept_db.catalog).rows
        )

    def test_emitted_sql_mentions_views(self, emp_dept_db):
        sql = ROUND_TRIP_QUERIES[3]
        emitted = query_to_sql(bind_sql(sql, emp_dept_db.catalog))
        assert emitted.startswith("with ")
        assert "group by" in emitted

    def test_unparse_after_invariant_split(self, emp_dept_db):
        """Transformed queries unparse too — handy for debugging what a
        transformation actually did."""
        from repro.transforms import apply_invariant_split

        sql = """
        with c(dno, asal) as (
            select e.dno, avg(e.sal) from emp e, dept d
            where e.dno = d.dno and d.budget < 1500000
            group by e.dno
        )
        select v.asal from c v
        """
        original = bind_sql(sql, emp_dept_db.catalog)
        split = apply_invariant_split(original, emp_dept_db.catalog)
        emitted = query_to_sql(split)
        rebound = bind_sql(emitted, emp_dept_db.catalog)
        assert rows_equal_bag(
            evaluate_canonical(original, emp_dept_db.catalog).rows,
            evaluate_canonical(rebound, emp_dept_db.catalog).rows,
        )
