"""Copy-on-write snapshots: stable reads under a concurrent writer.

The contract under test (``storage/snapshot.py``): a reader that
captured a snapshot before a write sees the pre-write row count and
byte-identical pages, no matter how many inserts or matview refreshes
land mid-scan — and the writer never waits for readers.
"""

from __future__ import annotations

import threading

import pytest

from repro import Database
from repro.storage.iocounter import IOCounter


def snapshot_pages(snap_table):
    io = IOCounter()
    return [list(page) for page in snap_table.scan_pages(io)]


class TestTableSnapshots:
    def test_insert_invisible_to_prior_snapshot(self, emp_dept_db):
        snapshot = emp_dept_db.catalog.capture_snapshot()
        snap_emp = snapshot.table("emp")
        before_rows = snap_emp.num_rows
        before_pages = snapshot_pages(snap_emp)
        emp_dept_db.insert("emp", [(800 + i, 1, 9e4, 30) for i in range(50)])
        # The live table moved on; the snapshot did not.
        assert emp_dept_db.catalog.table("emp").num_rows == before_rows + 50
        assert snap_emp.num_rows == before_rows
        assert snapshot_pages(snap_emp) == before_pages

    def test_snapshot_scan_io_matches_live(self, emp_dept_db):
        table = emp_dept_db.catalog.table("emp")
        snapshot = emp_dept_db.catalog.capture_snapshot()
        snap_emp = snapshot.table("emp")
        live_io, snap_io = IOCounter(), IOCounter()
        live_rows = list(table.scan(live_io))
        snap_rows = list(snap_emp.scan(snap_io))
        assert snap_rows == live_rows
        assert snap_io.page_reads == live_io.page_reads

    def test_empty_table_charges_header_page(self):
        db = Database()
        db.create_table("t", [("a", "int")])
        snap = db.catalog.capture_snapshot().table("t")
        io = IOCounter()
        assert list(snap.scan(io)) == []
        assert io.page_reads == 1

    def test_matview_refresh_invisible_to_prior_snapshot(self, emp_dept_db):
        emp_dept_db.execute(
            "CREATE MATERIALIZED VIEW dsum AS "
            "SELECT dno, SUM(sal) AS s FROM emp GROUP BY dno"
        )
        backing = emp_dept_db.catalog.materialized_view(
            "dsum"
        ).backing_info.table
        snapshot = emp_dept_db.catalog.capture_snapshot()
        snap_view = snapshot.table(backing.name)
        assert snap_view is not None
        before_pages = snapshot_pages(snap_view)
        before_rows = [tuple(r) for r in snap_view.rows[: snap_view.row_count]]
        # Make the view stale and refresh: the backing table is
        # rewritten in place (replace_rows), publishing a fresh list.
        emp_dept_db.execute("INSERT INTO emp VALUES (990, 1, 77777.0, 28)")
        emp_dept_db.refresh_materialized_view("dsum", mode="full")
        after_rows = [tuple(r) for r in backing.rows]
        assert after_rows != before_rows  # the refresh really changed it
        assert snapshot_pages(snap_view) == before_pages

    def test_index_probe_skips_rows_after_capture(self, emp_dept_db):
        snapshot = emp_dept_db.catalog.capture_snapshot()
        snap_emp = snapshot.table("emp")
        io = IOCounter()
        index = snap_emp.index("emp_dno_idx")
        before = list(snap_emp.index_lookup_rows(io, index, (1,)))
        # Insert more dno=1 rows and rebuild the live index.
        emp_dept_db.insert("emp", [(870 + i, 1, 5e4, 25) for i in range(10)])
        # The captured (keys, rids) arrays predate the insert, and any
        # rid beyond the visible count would be filtered anyway.
        after = list(
            snap_emp.index_lookup_rows(IOCounter(), index, (1,))
        )
        assert after == before

    def test_replace_rows_validates_into_fresh_list(self):
        db = Database()
        db.create_table("t", [("a", "int")])
        db.insert("t", [(1,), (2,)])
        table = db.catalog.table("t")
        old_rows = table.rows
        table.replace_rows([(7,), (8,), (9,)])
        assert table.rows is not old_rows
        assert old_rows == [(1,), (2,)]  # history is frozen
        assert table.num_rows == 3


class TestSessionSnapshotIsolation:
    def test_reader_pinned_to_capture_epoch(self, emp_dept_db):
        with emp_dept_db.session() as session:
            count = session.execute(
                "SELECT dno, COUNT(*) AS c FROM emp GROUP BY dno"
            )
            total_before = sum(row[1] for row in count.rows)
            emp_dept_db.execute("INSERT INTO emp VALUES (991, 1, 5.0, 30)")
            count_after = session.execute(
                "SELECT dno, COUNT(*) AS c FROM emp GROUP BY dno"
            )
            total_after = sum(row[1] for row in count_after.rows)
        assert total_after == total_before + 1

    def test_concurrent_readers_and_writer(self):
        """4 readers + 1 writer: every observed (count, sum) pair must
        equal a prefix of the deterministic insert sequence."""
        db = Database()
        db.create_table(
            "ledger", [("g", "int"), ("seq", "int"), ("amount", "int")]
        )
        db.insert("ledger", [(0, 0, 0)])
        batches = 30
        rows_per_batch = 7

        def writer():
            seq = 1
            for _ in range(batches):
                with db.write_lock:
                    db.insert(
                        "ledger",
                        [
                            (0, seq + i, seq + i)
                            for i in range(rows_per_batch)
                        ],
                    )
                seq += rows_per_batch

        errors = []
        observations = []

        def reader():
            try:
                with db.session() as session:
                    for _ in range(40):
                        result = session.execute(
                            "SELECT g, COUNT(*) AS c, SUM(amount) AS s "
                            "FROM ledger GROUP BY g"
                        )
                        observations.append(tuple(result.rows[0][1:]))
            except Exception as error:  # propagate to the main thread
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        write_thread = threading.Thread(target=writer)
        for t in threads:
            t.start()
        write_thread.start()
        for t in threads:
            t.join()
        write_thread.join()
        assert not errors, errors
        # count = 1 + k rows inserted; sum = 0 + 1 + ... + k (prefix
        # sums of the deterministic sequence). Any torn read would
        # break the pairing.
        for count, total in observations:
            k = count - 1
            assert total == k * (k + 1) // 2, (count, total)
        final = db.query(
            "SELECT g, COUNT(*) AS c FROM ledger GROUP BY g"
        ).rows[0][1]
        assert final == 1 + batches * rows_per_batch


class TestEpochs:
    def test_every_mutation_bumps(self):
        db = Database()
        epochs = [db.catalog.change_epoch]

        def step(fn):
            fn()
            epoch = db.catalog.change_epoch
            assert epoch > epochs[-1]
            epochs.append(epoch)

        step(lambda: db.create_table("t", [("a", "int"), ("b", "int")]))
        step(lambda: db.insert("t", [(1, 1), (2, 4)]))
        step(lambda: db.create_index("t_a_idx", "t", ["a"]))
        step(lambda: db.analyze())
        step(
            lambda: db.execute(
                "CREATE MATERIALIZED VIEW ts AS "
                "SELECT a, SUM(b) AS s FROM t GROUP BY a"
            )
        )
        step(lambda: db.execute("INSERT INTO t VALUES (3, 9)"))
        step(lambda: db.refresh_materialized_view("ts"))
        step(lambda: db.execute("DROP MATERIALIZED VIEW ts"))
        step(lambda: db.drop_index("t_a_idx"))
        step(lambda: db.drop_table("t"))

    def test_snapshot_carries_epoch(self, emp_dept_db):
        first = emp_dept_db.catalog.capture_snapshot()
        emp_dept_db.execute("INSERT INTO emp VALUES (992, 2, 1.0, 50)")
        second = emp_dept_db.catalog.capture_snapshot()
        assert second.epoch > first.epoch
