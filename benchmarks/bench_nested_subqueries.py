"""E8 — nested subqueries through flattening (Section 1, Section 6).

Paper claim: via Kim-style flattening, queries with correlated nested
subqueries become joins with aggregate views, so this paper's optimizer
"also provides a solution to the problem of optimizing complex queries
containing nested subqueries". The win over the pre-Kim strategy —
re-evaluating the inner block per outer row — is the motivation.

Regenerates: page IO of (i) naive correlated evaluation (inner block
scanned once per outer candidate row, the System R fallback), (ii) the
flattened query through the traditional optimizer, (iii) the flattened
query through the full optimizer, over a selectivity sweep.
"""

import pytest

from repro.workloads import EmpDeptConfig, build_empdept
from reporting import report_table

EMPLOYEES = 6000
DEPARTMENTS = 300


def nested_sql(threshold: int) -> str:
    return f"""
    select e1.sal from emp e1
    where e1.age < {threshold}
      and e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)
    """


def build():
    return build_empdept(
        EmpDeptConfig(
            employees=EMPLOYEES,
            departments=DEPARTMENTS,
            uniform_ages=True,
            memory_pages=8,
            with_indexes=False,
        )
    )


def naive_correlated_io(db, threshold: int) -> int:
    """Page IO of tuple-at-a-time correlated evaluation: scan the outer
    table once, then re-scan the inner table for every outer row that
    passes the age filter (no caching, the pre-Kim execution model)."""
    emp = db.catalog.table("emp")
    age_position = emp.column_position("age")
    outer_passing = sum(1 for row in emp.rows if row[age_position] < threshold)
    return emp.num_pages + outer_passing * emp.num_pages


@pytest.fixture(scope="module")
def nested_rows():
    db = build()
    rows = []
    for threshold in (19, 30, 55):
        sql = nested_sql(threshold)
        traditional = db.query(sql, optimizer="traditional")
        full = db.query(sql, optimizer="full")
        assert sorted(traditional.rows) == sorted(full.rows)
        naive = naive_correlated_io(db, threshold)
        rows.append(
            (
                f"age<{threshold}",
                naive,
                traditional.executed_io.total,
                full.executed_io.total,
                f"{naive / max(1, full.executed_io.total):.0f}x",
            )
        )
    report_table(
        "E8",
        "Nested subquery: naive correlated vs flattened (page IO)",
        ["filter", "naive IO", "flattened trad IO", "flattened full IO",
         "naive/full"],
        rows,
        notes=[
            "paper shape: flattening wins by orders of magnitude over "
            "per-row re-evaluation; the full optimizer then matches or "
            "beats the traditional plan on the flattened form."
        ],
    )
    return db, rows


def test_e8_flattening_dominates_naive(nested_rows, benchmark, bench_rounds):
    db, rows = nested_rows
    for _, naive, trad, full, _ in rows:
        assert full < naive
        assert full <= trad
    benchmark.pedantic(
        lambda: db.optimize(nested_sql(19), optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e8_unnesting_is_cheap(nested_rows, benchmark, bench_rounds):
    db, _ = nested_rows
    from repro.transforms import unnest_sql

    def unnest():
        report = unnest_sql(nested_sql(30), db.catalog)
        assert report.unnested_count == 1

    benchmark.pedantic(unnest, rounds=bench_rounds, iterations=1)
