"""E9 — ablation: the greedy conservative width guard.

Paper claim (Section 5.2): plan (2) — the early group-by — is adopted
only "if the width of computed relation corresponding to Plan (2) is no
more than that of Plan (1)"; together with the row-count argument this
makes the greedy choice safe under an IO-only cost model.

Regenerates: across a query population, how often the guard vetoes an
otherwise-cheaper early group-by, and whether removing the guard ever
produces a worse final plan (it must not produce a *better* one than
the guarantee allows to claim safety is free).
"""

import pytest

from repro import OptimizerOptions
from repro.optimizer import optimize_query
from repro.workloads import RandomQueryConfig, random_queries
from reporting import report_table


@pytest.fixture(scope="module")
def guard_rows():
    db, queries = random_queries(
        RandomQueryConfig(
            seed=303, queries=20, fact_rows=3000, dim_rows=900,
            memory_pages=8,
        )
    )
    guard_on = OptimizerOptions(width_guard=True)
    guard_off = OptimizerOptions(width_guard=False)
    vetoed = 0
    on_better = 0
    off_better = 0
    total_on = 0.0
    total_off = 0.0
    accepted_on = 0
    accepted_off = 0
    for query in queries:
        with_guard = optimize_query(query, db.catalog, db.params, guard_on)
        without_guard = optimize_query(
            query, db.catalog, db.params, guard_off
        )
        accepted_on += with_guard.stats.early_groupby_accepted
        accepted_off += without_guard.stats.early_groupby_accepted
        if (
            without_guard.stats.early_groupby_accepted
            > with_guard.stats.early_groupby_accepted
        ):
            vetoed += 1
        total_on += with_guard.cost
        total_off += without_guard.cost
        if with_guard.cost < without_guard.cost - 1e-9:
            on_better += 1
        elif without_guard.cost < with_guard.cost - 1e-9:
            off_better += 1
    rows = [
        ("queries", len(queries)),
        ("early-G accepted (guard on)", accepted_on),
        ("early-G accepted (guard off)", accepted_off),
        ("queries with vetoed early-G", vetoed),
        ("guard-on cheaper", on_better),
        ("guard-off cheaper", off_better),
        ("sum est cost (guard on)", f"{total_on:.0f}"),
        ("sum est cost (guard off)", f"{total_off:.0f}"),
    ]
    report_table(
        "E9",
        "Ablation: greedy conservative width guard",
        ["metric", "value"],
        rows,
        notes=[
            "paper shape: the guard only ever rejects candidates (never "
            "invents them); under the IO-only model its vetoes cost "
            "little, which is why the paper can offer safety for free."
        ],
    )
    return db, queries, rows


def test_e9_guard_only_restricts(guard_rows, benchmark, bench_rounds):
    db, queries, rows = guard_rows
    by_metric = {row[0]: row[1] for row in rows}
    assert (
        by_metric["early-G accepted (guard on)"]
        <= by_metric["early-G accepted (guard off)"]
    )
    benchmark.pedantic(
        lambda: optimize_query(
            queries[0], db.catalog, db.params,
            OptimizerOptions(width_guard=True),
        ),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e9_both_sides_stay_correct(guard_rows, benchmark, bench_rounds):
    from repro.engine.reference import evaluate_canonical, rows_equal_bag

    db, queries, _ = guard_rows
    query = queries[0]
    reference = evaluate_canonical(query, db.catalog)
    for options in (
        OptimizerOptions(width_guard=True),
        OptimizerOptions(width_guard=False),
    ):
        result = optimize_query(query, db.catalog, db.params, options)
        rows, _ = db.execute_plan(result.plan)
        assert rows_equal_bag(reference.rows, rows.rows)
    benchmark.pedantic(
        lambda: optimize_query(
            queries[0], db.catalog, db.params,
            OptimizerOptions(width_guard=False),
        ),
        rounds=bench_rounds,
        iterations=1,
    )
