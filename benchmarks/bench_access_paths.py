"""E13 — pull-up benefit #2: "Increased Execution Alternatives".

Paper claim (Section 3): besides exploiting join selectivity, pulling a
group-by up means "more access paths may be available for executing the
join, thereby reducing the cost of the join" — an index on a base
relation is unusable through a view boundary (the view's result is a
derived relation), but after pull-up the join partner is the base table
itself and an index nested-loop join applies.

Regenerates: executed page IO of the traditional plan (full view scan +
hash join) vs the pulled-up plan (index nested-loop probes only the
relevant departments) as the probing side shrinks, and the plan's use
of the index.
"""

import random

import pytest

from repro import CostParams, Database
from reporting import report_table

EMPLOYEES = 60_000
DEPARTMENTS = 6_000


def build(watchlist_size: int) -> Database:
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float")],
        primary_key=["eno"],
    )
    db.create_table(
        "watch", [("wid", "int"), ("dno", "int")], primary_key=["wid"]
    )
    rng = random.Random(90)
    db.insert(
        "emp",
        [
            (i, i % DEPARTMENTS, float(rng.randint(10, 99)))
            for i in range(EMPLOYEES)
        ],
    )
    db.insert(
        "watch",
        [(w, rng.randrange(DEPARTMENTS)) for w in range(watchlist_size)],
    )
    db.create_index("emp_dno_idx", "emp", ["dno"])
    db.analyze()
    return db


SQL = """
with a1(dno, asal) as (
    select e.dno, avg(e.sal) from emp e group by e.dno
)
select w.wid, v.asal from watch w, a1 v
where w.dno = v.dno
"""


@pytest.fixture(scope="module")
def access_path_rows():
    rows = []
    for watchlist_size in (10, 100, 2000):
        db = build(watchlist_size)
        traditional = db.query(SQL, optimizer="traditional")
        full = db.query(SQL, optimizer="full")
        assert sorted(traditional.rows) == sorted(full.rows)
        uses_index = "inlj" in full.explain()
        rows.append(
            (
                watchlist_size,
                traditional.executed_io.total,
                full.executed_io.total,
                "index NLJ" if uses_index else "scan join",
                f"{traditional.executed_io.total / max(1, full.executed_io.total):.2f}x",
            )
        )
    report_table(
        "E13",
        "Pull-up benefit #2: index access paths through the view "
        "boundary (page IO)",
        ["watchlist rows", "trad IO", "full IO", "full join method",
         "speedup"],
        rows,
        notes=[
            "paper shape: with a small probing side, pull-up turns the "
            "full view computation into a handful of index probes; as "
            "the probing side grows the scan-based plan takes over and "
            "the optimizer follows."
        ],
    )
    return rows


def test_e13_index_path_wins_when_selective(
    access_path_rows, benchmark, bench_rounds
):
    smallest = access_path_rows[0]
    assert smallest[3] == "index NLJ"
    assert smallest[2] < smallest[1]  # pull-up + index beats view scan
    db = build(10)
    benchmark.pedantic(
        lambda: db.optimize(SQL, optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e13_optimizer_never_worse(access_path_rows, benchmark, bench_rounds):
    for _, trad_io, full_io, _, _ in access_path_rows:
        assert full_io <= trad_io
    db = build(2000)
    benchmark.pedantic(
        lambda: db.optimize(SQL, optimizer="traditional"),
        rounds=bench_rounds,
        iterations=1,
    )
