"""E12 — cost-model fidelity: estimated vs executed page IO — and the
cardinality q-error study (histograms/MCVs vs the uniform baseline).

Every cost-based claim in the paper rides on the cost model ranking
plans correctly. Two measurement families:

- **E12 (pytest)**: the model's estimates compared to executed page IO
  for whole optimized queries on uniform data — exact on filter-free
  shapes, close on filtered ones.
- **Cardinality study (standalone + pytest)**: per-operator q-error of
  join and group-by estimates on a *Zipf-skewed* star workload, with
  full statistics (MCVs + equi-depth histograms) vs the uniform
  baseline (NDV + range only). Writes ``BENCH_cardinality.json`` via
  ``make bench-card`` and asserts the acceptance bars: median join +
  group-by q-error improves >= 5x, at least one end-to-end query runs
  measurably cheaper (lower actual page reads) with histograms on, and
  sampled ANALYZE stays within its page budget and NDV error bounds.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import pytest

from repro.algebra.plan import GroupByNode, JoinNode, ScanNode, plan_nodes
from repro.stats import EXACT, StatsConfig, UNIFORM, median, percentile, q_error
from repro.workloads import EmpDeptConfig, build_empdept
from repro.workloads.generator import RandomQueryConfig, build_star_database
from reporting import report_table

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_cardinality.json"
)

QUERIES = [
    ("full scan", "select e.sal from emp e"),
    (
        "filter+join",
        "select e.sal, d.budget from emp e, dept d "
        "where e.dno = d.dno and e.age < 30",
    ),
    (
        "group-by",
        "select e.dno, avg(e.sal) as a from emp e group by e.dno",
    ),
    (
        "view join",
        "with v(dno, a) as (select e.dno, avg(e.sal) from emp e "
        "group by e.dno) "
        "select d.budget, v.a from dept d, v where d.dno = v.dno",
    ),
    (
        "nested subquery",
        "select e1.sal from emp e1 where e1.age < 25 and e1.sal > "
        "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
    ),
    (
        "having",
        "select e.dno, sum(e.sal) as s from emp e group by e.dno "
        "having sum(e.sal) > 100000",
    ),
]


@pytest.fixture(scope="module")
def fidelity_rows():
    db = build_empdept(
        EmpDeptConfig(
            employees=6000,
            departments=500,
            uniform_ages=True,
            memory_pages=8,
            with_indexes=False,
        )
    )
    rows = []
    for label, sql in QUERIES:
        result = db.query(sql, optimizer="full")
        estimated = result.estimated_cost
        executed = result.executed_io.total
        rows.append(
            (
                label,
                f"{estimated:.0f}",
                executed,
                f"{executed / max(estimated, 1e-9):.3f}",
            )
        )
    report_table(
        "E12",
        "Cost-model fidelity (estimated vs executed page IO)",
        ["query", "estimated", "executed", "exec/est"],
        rows,
        notes=[
            "shape: ratios ~1.0; deviations come only from cardinality "
            "estimation (uniformity), never from the IO formulas, which "
            "are shared between model and executor."
        ],
    )
    return db, rows


def test_e12_estimates_track_execution(
    fidelity_rows, benchmark, bench_rounds
):
    db, rows = fidelity_rows
    for label, estimated, executed, ratio in rows:
        assert 0.5 <= float(ratio) <= 2.0, (label, ratio)
    benchmark.pedantic(
        lambda: db.query(QUERIES[0][1], optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e12_exact_on_unfiltered_shapes(
    fidelity_rows, benchmark, bench_rounds
):
    db, rows = fidelity_rows
    by_label = {row[0]: row for row in rows}
    for label in ("full scan", "group-by"):
        _, estimated, executed, _ = by_label[label]
        assert abs(float(estimated) - executed) < 1.0, label
    benchmark.pedantic(
        lambda: db.query(QUERIES[2][1], optimizer="greedy"),
        rounds=bench_rounds,
        iterations=1,
    )


# ---------------------------------------------------------------------------
# Cardinality q-error study: histograms + MCVs vs the uniform baseline
# ---------------------------------------------------------------------------

FULL_STATS = StatsConfig()

#: The end-to-end plan-choice demo: on Zipf-skewed fact keys the uniform
#: baseline estimates |fact|/ndv matches for the hot key and picks the
#: unclustered index probe; MCVs reveal the true hot-key frequency and
#: the optimizer falls back to the (much cheaper) heap scan.
PLAN_PROBE_SQL = "select f.qty from fact f where f.d1_id = 0"

MIN_MEDIAN_IMPROVEMENT = 5.0
NDV_ERROR_BOUND = 3.0  # sampled NDV must land within 3x of exact


def _study_config(smoke: bool) -> RandomQueryConfig:
    if smoke:
        return RandomQueryConfig(
            seed=7, fact_rows=4000, dim_rows=200, zipf_skew=1.3
        )
    return RandomQueryConfig(
        seed=7, fact_rows=20000, dim_rows=500, zipf_skew=1.3
    )


def _skew_queries(dim_rows: int) -> List:
    """Join- and group-by-heavy queries over Zipf-skewed fact keys.

    The hot keys (0, 1, 2) are where uniform NDV division is most
    wrong; the cold key and the range shape keep both estimators
    honest on the tail."""
    cold = dim_rows - 5
    return [
        (
            "join hot d1",
            "select d.val as v, f.qty as q from fact f, dim1 d "
            "where f.d1_id = d.d1_id and f.d1_id = 0",
        ),
        (
            "join hot d2",
            "select d.val as v, f.price as p from fact f, dim2 d "
            "where f.d2_id = d.d2_id and f.d2_id = 1",
        ),
        (
            "join warm d1",
            "select d.cat as c, f.qty as q from fact f, dim1 d "
            "where f.d1_id = d.d1_id and f.d1_id = 2",
        ),
        (
            "group hot d1 by pk",
            "select f.f_id, sum(f.qty) as s from fact f "
            "where f.d1_id = 0 group by f.f_id",
        ),
        (
            "group hot d2 by pk",
            "select f.f_id, sum(f.price) as s from fact f "
            "where f.d2_id = 0 group by f.f_id",
        ),
        (
            "group hot d1 by d2",
            "select f.d2_id, sum(f.qty) as s from fact f "
            "where f.d1_id = 0 group by f.d2_id",
        ),
        (
            "group skew range",
            "select f.flag, count(f.f_id) as c from fact f "
            "where f.d1_id < 10 group by f.flag",
        ),
        (
            "group cold d1",
            "select f.flag, count(f.f_id) as c from fact f "
            f"where f.d1_id = {cold} group by f.flag",
        ),
    ]


def _set_stats_config(db, config: StatsConfig) -> None:
    db.catalog.stats_config = config
    for name in db.catalog.table_names():
        db.catalog.info(name).invalidate_stats()
    db.analyze()


def _operator_q_errors(result) -> Dict[str, List[float]]:
    qs: Dict[str, List[float]] = {"scan": [], "join": [], "group": []}
    for node in plan_nodes(result.plan):
        if node.props is None or node.actual_rows is None:
            continue
        q = q_error(node.props.rows, node.actual_rows)
        if isinstance(node, JoinNode):
            qs["join"].append(q)
        elif isinstance(node, GroupByNode):
            qs["group"].append(q)
        elif isinstance(node, ScanNode):
            qs["scan"].append(q)
    return qs


def _sampling_study(db, check: bool) -> Dict:
    """Sampled ANALYZE stays within its page budget and NDV bounds."""
    info = db.catalog.info("fact")
    pages = info.table.num_pages
    _set_stats_config(db, EXACT)
    exact = db.catalog.stats("fact")
    sampled_config = StatsConfig(
        full_scan_pages=max(1, pages // 4),
        sample_fraction=0.25,
        min_sample_pages=max(4, pages // 20),
    )
    _set_stats_config(db, sampled_config)
    sampled = db.catalog.stats("fact")
    budget = max(
        sampled_config.min_sample_pages,
        int(pages * sampled_config.sample_fraction),
    )
    columns = {}
    for name in ("f_id", "d1_id", "d2_id", "qty", "flag"):
        exact_ndv = exact.column(name).n_distinct
        est_ndv = sampled.column(name).n_distinct
        ratio = est_ndv / max(1.0, exact_ndv)
        columns[name] = {
            "exact_ndv": exact_ndv,
            "sampled_ndv": est_ndv,
            "ratio": round(ratio, 3),
        }
        if check:
            assert 1.0 / NDV_ERROR_BOUND <= ratio <= NDV_ERROR_BOUND, (
                name,
                columns[name],
            )
    if check:
        assert sampled.sampled, "expected a block-sampled ANALYZE"
        assert sampled.pages_scanned <= budget, (
            sampled.pages_scanned,
            budget,
        )
        assert sampled.row_count == info.table.num_rows
    return {
        "fact_pages": pages,
        "page_budget": budget,
        "pages_scanned": sampled.pages_scanned,
        "row_count_exact": sampled.row_count == info.table.num_rows,
        "ndv_error_bound": NDV_ERROR_BOUND,
        "columns": columns,
    }


def run_cardinality_study(smoke: bool = False, check: bool = True) -> Dict:
    """The whole study; ``check=True`` asserts the acceptance bars."""
    config = _study_config(smoke)
    db = build_star_database(config)
    queries = _skew_queries(config.dim_rows)
    per_config: Dict[str, Dict] = {}
    probe_io: Dict[str, int] = {}
    for label, stats_config in (
        ("uniform", UNIFORM),
        ("histograms", FULL_STATS),
    ):
        _set_stats_config(db, stats_config)
        ops: Dict[str, List[float]] = {"scan": [], "join": [], "group": []}
        detail = []
        for qlabel, sql in queries:
            result = db.query(sql)
            qs = _operator_q_errors(result)
            for kind in ops:
                ops[kind].extend(qs[kind])
            interesting = qs["join"] + qs["group"]
            detail.append(
                {
                    "query": qlabel,
                    "rows": len(result),
                    "join_group_q": [round(q, 2) for q in interesting],
                    "scan_q": [round(q, 2) for q in qs["scan"]],
                }
            )
        probe = db.query(PLAN_PROBE_SQL)
        probe_io[label] = probe.executed_io.total
        summary = {
            kind: {
                "ops": len(values),
                "median": round(median(values), 3),
                "p95": round(percentile(values, 0.95), 3),
            }
            for kind, values in ops.items()
            if values
        }
        per_config[label] = {
            "summary": summary,
            "detail": detail,
            "join_group_q": sorted(
                round(q, 2) for q in ops["join"] + ops["group"]
            ),
            "probe_plan": probe.explain().splitlines()[0],
            "probe_io": probe.executed_io.total,
        }
    uniform_median = median(per_config["uniform"]["join_group_q"])
    hist_median = median(per_config["histograms"]["join_group_q"])
    improvement = uniform_median / max(hist_median, 1e-9)
    if check:
        assert improvement >= MIN_MEDIAN_IMPROVEMENT, (
            uniform_median,
            hist_median,
        )
        assert probe_io["histograms"] < probe_io["uniform"], probe_io
    sampling = _sampling_study(db, check)
    return {
        "workload": {
            "fact_rows": config.fact_rows,
            "dim_rows": config.dim_rows,
            "zipf_skew": config.zipf_skew,
            "seed": config.seed,
            "smoke": smoke,
        },
        "configs": per_config,
        "join_group_median_improvement": round(improvement, 2),
        "min_required_improvement": MIN_MEDIAN_IMPROVEMENT,
        "plan_choice": {
            "sql": PLAN_PROBE_SQL,
            "uniform_io": probe_io["uniform"],
            "histograms_io": probe_io["histograms"],
            "uniform_plan": per_config["uniform"]["probe_plan"],
            "histograms_plan": per_config["histograms"]["probe_plan"],
        },
        "sampling": sampling,
    }


def _report_study(study: Dict) -> None:
    rows = []
    for label in ("uniform", "histograms"):
        summary = study["configs"][label]["summary"]
        for kind in ("scan", "join", "group"):
            if kind not in summary:
                continue
            stats = summary[kind]
            rows.append(
                (label, kind, stats["ops"], stats["median"], stats["p95"])
            )
    report_table(
        "E15",
        "Cardinality q-error on Zipf-skewed star workload",
        ["stats", "operator", "ops", "median q", "p95 q"],
        rows,
        notes=[
            "join + group-by median improvement: "
            f"{study['join_group_median_improvement']}x "
            f"(bar: {study['min_required_improvement']}x)",
            "plan choice on hot-key probe: "
            f"uniform {study['plan_choice']['uniform_io']} page reads vs "
            f"histograms {study['plan_choice']['histograms_io']}",
            "sampled ANALYZE: "
            f"{study['sampling']['pages_scanned']} of "
            f"{study['sampling']['fact_pages']} pages "
            f"(budget {study['sampling']['page_budget']}), NDV within "
            f"{study['sampling']['ndv_error_bound']}x on every column",
        ],
    )


@pytest.fixture(scope="module")
def cardinality_study():
    study = run_cardinality_study(smoke=True, check=False)
    _report_study(study)
    return study


def test_e13_skew_median_qerror_improves_5x(cardinality_study):
    assert (
        cardinality_study["join_group_median_improvement"]
        >= MIN_MEDIAN_IMPROVEMENT
    )


def test_e13_histograms_pick_cheaper_plan(cardinality_study):
    choice = cardinality_study["plan_choice"]
    assert choice["histograms_io"] < choice["uniform_io"]
    assert choice["histograms_plan"] != choice["uniform_plan"]


def test_e13_sampled_analyze_within_bounds(cardinality_study):
    sampling = cardinality_study["sampling"]
    assert sampling["pages_scanned"] <= sampling["page_budget"]
    assert sampling["row_count_exact"]
    for name, column in sampling["columns"].items():
        assert (
            1.0 / sampling["ndv_error_bound"]
            <= column["ratio"]
            <= sampling["ndv_error_bound"]
        ), (name, column)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Cardinality fidelity study (writes BENCH JSON)."
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI: same assertions, faster build "
        "(no JSON written unless --out is given explicitly)",
    )
    args = parser.parse_args(argv)
    study = run_cardinality_study(smoke=args.smoke, check=True)
    _report_study(study)
    if not args.smoke or args.out != DEFAULT_OUTPUT:
        args.out.write_text(
            json.dumps(study, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}")
    else:
        print("smoke mode: no JSON written")
    print(
        "join+group median q-error improvement: "
        f"{study['join_group_median_improvement']}x, plan probe IO "
        f"{study['plan_choice']['uniform_io']} -> "
        f"{study['plan_choice']['histograms_io']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
