"""E12 — cost-model fidelity: estimated vs executed page IO.

Every cost-based claim in the paper rides on the cost model ranking
plans correctly. Here the model's estimates are compared to executed
page IO for whole optimized queries: exact on filter-free shapes (both
sides use the same formulas over the same page counts) and close on
filtered shapes (uniformity assumptions vs data).

Regenerates: per-query estimated cost, executed IO, and their ratio.
"""

import pytest

from repro.workloads import EmpDeptConfig, build_empdept
from reporting import report_table

QUERIES = [
    ("full scan", "select e.sal from emp e"),
    (
        "filter+join",
        "select e.sal, d.budget from emp e, dept d "
        "where e.dno = d.dno and e.age < 30",
    ),
    (
        "group-by",
        "select e.dno, avg(e.sal) as a from emp e group by e.dno",
    ),
    (
        "view join",
        "with v(dno, a) as (select e.dno, avg(e.sal) from emp e "
        "group by e.dno) "
        "select d.budget, v.a from dept d, v where d.dno = v.dno",
    ),
    (
        "nested subquery",
        "select e1.sal from emp e1 where e1.age < 25 and e1.sal > "
        "(select avg(e2.sal) from emp e2 where e2.dno = e1.dno)",
    ),
    (
        "having",
        "select e.dno, sum(e.sal) as s from emp e group by e.dno "
        "having sum(e.sal) > 100000",
    ),
]


@pytest.fixture(scope="module")
def fidelity_rows():
    db = build_empdept(
        EmpDeptConfig(
            employees=6000,
            departments=500,
            uniform_ages=True,
            memory_pages=8,
            with_indexes=False,
        )
    )
    rows = []
    for label, sql in QUERIES:
        result = db.query(sql, optimizer="full")
        estimated = result.estimated_cost
        executed = result.executed_io.total
        rows.append(
            (
                label,
                f"{estimated:.0f}",
                executed,
                f"{executed / max(estimated, 1e-9):.3f}",
            )
        )
    report_table(
        "E12",
        "Cost-model fidelity (estimated vs executed page IO)",
        ["query", "estimated", "executed", "exec/est"],
        rows,
        notes=[
            "shape: ratios ~1.0; deviations come only from cardinality "
            "estimation (uniformity), never from the IO formulas, which "
            "are shared between model and executor."
        ],
    )
    return db, rows


def test_e12_estimates_track_execution(
    fidelity_rows, benchmark, bench_rounds
):
    db, rows = fidelity_rows
    for label, estimated, executed, ratio in rows:
        assert 0.5 <= float(ratio) <= 2.0, (label, ratio)
    benchmark.pedantic(
        lambda: db.query(QUERIES[0][1], optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e12_exact_on_unfiltered_shapes(
    fidelity_rows, benchmark, bench_rounds
):
    db, rows = fidelity_rows
    by_label = {row[0]: row for row in rows}
    for label in ("full scan", "group-by"):
        _, estimated, executed, _ = by_label[label]
        assert abs(float(estimated) - executed) < 1.0, label
    benchmark.pedantic(
        lambda: db.query(QUERIES[2][1], optimizer="greedy"),
        rounds=bench_rounds,
        iterations=1,
    )
