"""E5 — Figure 5: two-phase optimization with multiple aggregate views.

The paper's Figure 5 illustrates the steps for a query joining two
aggregate views V1, V2 and base tables B1, B2: Step 1 optimizes each
"extended" view Φ(Vᵢ, Wᵢ) for every pull-up set Wᵢ ⊆ B; Step 2
enumerates linear orders over consistent (disjoint) choices.

Regenerates: the Step 1 pull-up sets per view, the Step 2 consistent
combinations with their estimated costs, and the chosen combination —
the literal content of Figure 5 for a concrete instance.
"""

import random

import pytest

from repro import CostParams, Database
from repro.engine.reference import rows_equal_bag
from reporting import report, report_table

SQL = """
with v1(dno, asal) as (select e.dno, avg(e.sal) from emp e group by e.dno),
     v2(loc, msal) as (select f.loc, max(f.sal) from emp f group by f.loc)
select b1.budget, v1.asal, v2.msal from dept b1, site b2, v1, v2
where b1.dno = v1.dno and b2.loc = v2.loc
  and b1.budget < 600000 and b2.size < 40
"""


def build() -> Database:
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("loc", "int"), ("sal", "float")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept", [("dno", "int"), ("budget", "float")], primary_key=["dno"]
    )
    db.create_table(
        "site", [("loc", "int"), ("size", "int")], primary_key=["loc"]
    )
    rng = random.Random(50)
    db.insert(
        "emp",
        [
            (i, i % 600, i % 200, float(rng.randint(10, 99)))
            for i in range(6000)
        ],
    )
    db.insert(
        "dept",
        [(d, float(rng.randint(100_000, 1_000_000))) for d in range(600)],
    )
    db.insert("site", [(s, rng.randint(1, 100)) for s in range(200)])
    db.analyze()
    return db


@pytest.fixture(scope="module")
def multiview_result():
    db = build()
    query = db.bind(SQL)
    result = db.optimize_bound(query, optimizer="full")

    # Step 1: pull-up sets enumerated per view
    per_view = {}
    for combo, _cost in result.alternatives:
        for view_alias, pulled in combo.items():
            per_view.setdefault(view_alias, set()).add(pulled)
    step1_lines = [
        f"Step 1 pull-up sets for {alias}: "
        + ", ".join(
            "{" + ",".join(s) + "}" if s else "{}"
            for s in sorted(sets)
        )
        for alias, sets in sorted(per_view.items())
    ]

    # Step 2: consistent combinations with costs
    combo_rows = [
        (
            " ".join(
                f"{alias}<-{{{','.join(pulled)}}}"
                for alias, pulled in sorted(combo.items())
            ),
            f"{cost:.0f}",
            "chosen" if combo == result.pull_choices else "",
        )
        for combo, cost in sorted(
            result.alternatives, key=lambda pair: pair[1]
        )
    ]
    report(
        "E5",
        "Figure 5 two-view enumeration",
        step1_lines
        + [""]
        + [
            "  ".join(row)
            for row in [("combination", "est cost", "")] + combo_rows
        ]
        + [
            "",
            f"combinations enumerated: "
            f"{result.stats.combinations_enumerated}",
            f"traditional cost: {result.traditional_cost:.0f}  "
            f"chosen cost: {result.cost:.0f}",
        ],
    )

    # correctness: the chosen plan must agree with the traditional
    # optimizer's plan (the brute-force reference cannot scale to a
    # 4-relation cartesian product at this size)
    traditional = db.optimize_bound(query, optimizer="traditional")
    full_rows, _ = db.execute_plan(result.plan)
    trad_rows, _ = db.execute_plan(traditional.plan)
    assert rows_equal_bag(full_rows.rows, trad_rows.rows)
    return db, result


def test_e5_consistent_combinations_only(
    multiview_result, benchmark, bench_rounds
):
    db, result = multiview_result
    for combo, _ in result.alternatives:
        pulled = [alias for w in combo.values() for alias in w]
        assert len(pulled) == len(set(pulled))  # Wᵢ pairwise disjoint
    benchmark.pedantic(
        lambda: db.optimize(SQL, optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e5_guarantee_holds_with_two_views(
    multiview_result, benchmark, bench_rounds
):
    db, result = multiview_result
    assert result.cost <= result.traditional_cost + 1e-9
    benchmark.pedantic(
        lambda: db.optimize(SQL, optimizer="traditional"),
        rounds=bench_rounds,
        iterations=1,
    )
