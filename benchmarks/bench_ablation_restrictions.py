"""E10 — ablation: the Section 5.3 search-space restrictions.

Paper claim: "we do not pull-up a relation through a view unless they
share a predicate" and "we consider a k-level pull-up in which no
partial plan may involve more than k applications of pull-up" — the two
knobs that keep the enumerated space practical.

Regenerates: the quality/effort frontier — estimated plan cost vs
pull-up sets and joinplan calls — as k sweeps 0..3 with and without the
predicate-sharing restriction, on a query with several pullable
relations.
"""

import random

import pytest

from repro import CostParams, Database, OptimizerOptions
from reporting import report_table

SQL = """
with v(dno, asal) as (select e.dno, avg(e.sal) from emp e group by e.dno)
select b1.x, v.asal from t1 b1, t2 b2, t3 b3, v
where b1.dno = v.dno and b2.dno = v.dno and b3.k = b2.k
  and b1.x < 50 and v.asal > 20
"""


def build() -> Database:
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "emp", [("eno", "int"), ("dno", "int"), ("sal", "float")],
        primary_key=["eno"],
    )
    for name in ("t1", "t2", "t3"):
        db.create_table(
            name,
            [("id", "int"), ("dno", "int"), ("k", "int"), ("x", "float")],
            primary_key=["id"],
        )
    rng = random.Random(60)
    db.insert(
        "emp",
        [(i, i % 2000, float(rng.randint(1, 99))) for i in range(6000)],
    )
    for name in ("t1", "t2", "t3"):
        db.insert(
            name,
            [
                (i, i % 2000, i % 50, float(rng.randint(1, 99)))
                for i in range(1000)
            ],
        )
    db.analyze()
    return db


@pytest.fixture(scope="module")
def restriction_rows():
    db = build()
    rows = []
    for shared in (True, False):
        for k in (0, 1, 2, 3):
            options = OptimizerOptions(
                k_level=k, require_shared_predicate=shared
            )
            result = db.optimize(SQL, optimizer="full", options=options)
            rows.append(
                (
                    k,
                    "yes" if shared else "no",
                    result.stats.pullup_sets_enumerated,
                    result.stats.joinplan_calls,
                    f"{result.cost:.0f}",
                )
            )
    report_table(
        "E10",
        "Ablation: k-level pull-up and predicate sharing",
        ["k", "pred-share", "pull sets", "joinplans", "est cost"],
        rows,
        notes=[
            "paper shape: effort grows with k and explodes without "
            "predicate sharing, while plan quality saturates at small "
            "k — the restrictions are nearly free."
        ],
    )
    return db, rows


def test_e10_quality_saturates_early(
    restriction_rows, benchmark, bench_rounds
):
    db, rows = restriction_rows
    shared = [row for row in rows if row[1] == "yes"]
    costs = [float(row[4]) for row in shared]
    assert costs[0] >= costs[1] >= costs[-1] - 1e-6  # monotone in k
    # k=2 already achieves the k=3 cost (saturation)
    assert abs(costs[2] - costs[3]) < 1e-6
    benchmark.pedantic(
        lambda: db.optimize(
            SQL, optimizer="full", options=OptimizerOptions(k_level=2)
        ),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e10_effort_grows_without_restrictions(
    restriction_rows, benchmark, bench_rounds
):
    db, rows = restriction_rows
    by_key = {(row[0], row[1]): row for row in rows}
    assert by_key[(2, "no")][2] >= by_key[(2, "yes")][2]
    assert by_key[(3, "yes")][3] >= by_key[(1, "yes")][3]
    benchmark.pedantic(
        lambda: db.optimize(
            SQL,
            optimizer="full",
            options=OptimizerOptions(k_level=1),
        ),
        rounds=bench_rounds,
        iterations=1,
    )
