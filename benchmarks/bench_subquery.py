"""Decorrelation payoff — flattened subqueries vs naive mark joins.

Four WHERE-clause subquery shapes run against the same order/customer
database, each twice:

- **decorrelated** — the default optimizer flattens the subquery into
  a semi/anti join or a grouped view joined back (Kim's
  join-aggregate transformation; ``SearchStats.decorrelation_adopted``
  is asserted), so execution is one hash pass over each input;
- **naive** — ``OptimizerOptions(enable_decorrelation=False)`` keeps
  the subquery as a :class:`SubqueryMarkNode`, the deliberately
  unoptimized O(outer x inner) rescan the paper's transformation is
  measured against.

The shapes: uncorrelated IN (semi join), NOT IN over a NULL-free inner
(anti join), a correlated scalar AVG comparison (grouped-view LEFT
lineage), and correlated EXISTS. Answer-bag identity between the two
modes is always asserted per shape; the ``--assert-speedup`` gate (CI
uses 5.0) requires every shape's best-of-N naive wall-clock to be at
least that factor above the decorrelated one.

``make bench-subq`` writes ``BENCH_subquery.json`` at the repository
root; ``make bench-subq-smoke`` (CI) runs a small configuration with
the gate asserted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )

from reporting import machine_metadata, report_table

from repro.cost.params import CostParams
from repro.db import Database
from repro.optimizer.options import OptimizerOptions

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_subquery.json"
)

NAIVE = OptimizerOptions(enable_decorrelation=False)

SHAPES: Tuple[Tuple[str, str], ...] = (
    (
        "in-semi",
        "SELECT o.ono, o.amount FROM orders o WHERE o.cno IN "
        "(SELECT c.cno FROM customers c WHERE c.tier >= 2)",
    ),
    (
        "not-in-anti",
        "SELECT o.ono, o.amount FROM orders o WHERE o.cno NOT IN "
        "(SELECT c.cno FROM customers c WHERE c.tier >= 2)",
    ),
    (
        "corr-scalar-avg",
        "SELECT o.ono FROM orders o WHERE o.amount > "
        "(SELECT AVG(c.credit) FROM customers c WHERE c.cno = o.cno)",
    ),
    (
        "corr-exists",
        "SELECT o.ono, o.cno FROM orders o WHERE EXISTS "
        "(SELECT c.cno FROM customers c "
        "WHERE c.cno = o.cno AND c.tier >= 3)",
    ),
)


def build_database(orders: int, customers: int) -> Database:
    """*orders* rows spread over *customers* accounts; dyadic amounts
    keep AVG comparisons exact, so answer identity is exact equality.
    Customer tiers split the inner side so semi and anti joins both
    keep a nontrivial fraction of the outer rows."""
    db = Database(CostParams(memory_pages=32))
    db.create_table(
        "orders",
        [("ono", "int"), ("cno", "int"), ("amount", "float")],
        primary_key=["ono"],
    )
    db.create_table(
        "customers",
        [("cno", "int"), ("tier", "int"), ("credit", "float")],
        primary_key=["cno"],
    )
    db.insert(
        "orders",
        [(i, i % customers, (i % 41) * 0.25) for i in range(orders)],
    )
    db.insert(
        "customers",
        [(c, c % 4, (c % 17) * 0.5) for c in range(customers)],
    )
    db.analyze()
    return db


def run_mode(
    db: Database,
    sql: str,
    options: Optional[OptimizerOptions],
    repeats: int,
) -> Dict[str, object]:
    samples: List[float] = []
    result = None
    for _ in range(repeats):
        start = perf_counter()
        result = db.query(sql, options=options)
        samples.append(perf_counter() - start)
    stats = db.optimize(sql, options=options).stats
    return {
        "rows": sorted(tuple(row) for row in result.rows),
        "io_total": result.executed_io.total,
        "best_ms": 1000.0 * min(samples),
        "mean_ms": 1000.0 * sum(samples) / len(samples),
        "decorrelation_considered": stats.decorrelation_considered,
        "decorrelation_adopted": stats.decorrelation_adopted,
    }


def run_shape(
    db: Database, name: str, sql: str, repeats: int
) -> Tuple[Dict[str, object], List[str]]:
    decorrelated = run_mode(db, sql, None, repeats)
    naive = run_mode(db, sql, NAIVE, repeats)

    failures: List[str] = []
    if decorrelated["rows"] != naive["rows"]:
        failures.append(
            f"{name}: decorrelated and naive answers differ "
            f"({len(decorrelated['rows'])} vs {len(naive['rows'])} rows)"
        )
    if not decorrelated["decorrelation_adopted"]:
        failures.append(
            f"{name}: the optimizer did not flatten the subquery "
            f"(considered {decorrelated['decorrelation_considered']})"
        )
    if naive["decorrelation_adopted"]:
        failures.append(
            f"{name}: the naive baseline still decorrelated — "
            "enable_decorrelation=False is not ablating"
        )

    speedup = (
        naive["best_ms"] / decorrelated["best_ms"]
        if decorrelated["best_ms"]
        else 0.0
    )
    payload = {
        "shape": name,
        "sql": sql,
        "rows_out": len(decorrelated["rows"]),
        "best_ms_decorrelated": decorrelated["best_ms"],
        "best_ms_naive": naive["best_ms"],
        "mean_ms_decorrelated": decorrelated["mean_ms"],
        "mean_ms_naive": naive["mean_ms"],
        "io_decorrelated": decorrelated["io_total"],
        "io_naive": naive["io_total"],
        "speedup": speedup,
        "answer_identical": decorrelated["rows"] == naive["rows"],
    }
    return payload, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (fewer outer rows, fewer repeats)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every shape's naive best wall-clock is at "
        "least X times the decorrelated one (answer identity is "
        "always asserted)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        orders, customers, repeats = 2_000, 200, 3
    else:
        orders, customers, repeats = 6_000, 400, 5

    db = build_database(orders, customers)
    shapes: List[Dict[str, object]] = []
    failures: List[str] = []
    for name, sql in SHAPES:
        payload, shape_failures = run_shape(db, name, sql, repeats)
        shapes.append(payload)
        failures.extend(shape_failures)

    if args.assert_speedup is not None:
        for payload in shapes:
            if payload["speedup"] < args.assert_speedup:
                failures.append(
                    f"{payload['shape']}: speedup "
                    f"{payload['speedup']:.2f}x is below the "
                    f"{args.assert_speedup:.1f}x gate"
                )

    out = {
        "experiment": "subquery_decorrelation",
        "smoke": bool(args.smoke),
        "machine": machine_metadata(),
        "orders": orders,
        "customers": customers,
        "repeats": repeats,
        "shapes": shapes,
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n")

    report_table(
        "subquery_decorrelation",
        f"decorrelated vs naive mark join "
        f"({orders} orders x {customers} customers, best of {repeats})",
        ["shape", "naive ms", "decorrelated ms", "speedup", "rows"],
        [
            [
                payload["shape"],
                f"{payload['best_ms_naive']:.2f}",
                f"{payload['best_ms_decorrelated']:.2f}",
                f"{payload['speedup']:.1f}x",
                payload["rows_out"],
            ]
            for payload in shapes
        ],
        notes=[
            "answers identical per shape: "
            + ", ".join(
                f"{p['shape']}={p['answer_identical']}" for p in shapes
            ),
        ],
    )

    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
