"""Shared reporting for the benchmark harness.

Each experiment prints its paper-style table straight to the real
stdout (bypassing pytest capture, so the rows appear in
``pytest benchmarks/ --benchmark-only`` output) and also writes it to
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib
import platform
import sys
from typing import Dict, Iterable, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def machine_metadata() -> Dict[str, object]:
    """Where a benchmark ran: interpreter and host, for the JSON
    artifacts (wall-clock numbers are meaningless without them)."""
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[str]:
    """Fixed-width table lines from headers and row tuples."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    def fmt(cells):
        return "  ".join(
            cell.rjust(width) for cell, width in zip(cells, widths)
        )
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in materialized)
    return lines


def report(experiment: str, title: str, lines: Sequence[str]) -> None:
    """Print an experiment's table and persist it under results/."""
    banner = f"===== {experiment}: {title} ====="
    output = [banner, *lines, ""]
    text = "\n".join(output)
    print(text, file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")


def report_table(experiment, title, headers, rows, notes=()):
    lines = format_table(headers, rows)
    lines.extend(notes)
    report(experiment, title, lines)
