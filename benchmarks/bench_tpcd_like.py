"""E11 — TPC-D-like decision-support queries (Section 1's motivation).

The paper motivates its query class with decision-support workloads
("e.g., see TPC-D benchmark"). The real benchmark kit is not available
offline, so a seeded synthetic star schema with the same shape stands
in (DESIGN.md, substitutions).

Regenerates: estimated cost and executed page IO of three canonical
decision-support query shapes under all three optimizer levels, with
cross-optimizer result-equality checks.
"""

import pytest

from repro.workloads import TpcdConfig, build_tpcd_like
from repro.workloads.tpcdlike import (
    BIG_SPENDERS_SQL,
    REVENUE_PER_CUSTOMER_SQL,
    SUPPLIER_SHARE_SQL,
)
from reporting import report_table

QUERIES = [
    ("Q1 revenue/customer", REVENUE_PER_CUSTOMER_SQL),
    ("Q2 big spenders", BIG_SPENDERS_SQL),
    ("Q3 supplier share", SUPPLIER_SHARE_SQL),
]


@pytest.fixture(scope="module")
def tpcd_rows():
    db = build_tpcd_like(
        TpcdConfig(orders=4000, customers=400, memory_pages=8)
    )
    rows = []
    for label, sql in QUERIES:
        reference_rows = None
        for optimizer in ("traditional", "greedy", "full"):
            result = db.query(sql, optimizer=optimizer)
            if reference_rows is None:
                reference_rows = sorted(map(repr, result.rows))
            else:
                assert sorted(map(repr, result.rows)) == reference_rows
            rows.append(
                (
                    label,
                    optimizer,
                    len(result.rows),
                    f"{result.estimated_cost:.0f}",
                    result.executed_io.total,
                )
            )
    report_table(
        "E11",
        "TPC-D-like workload across optimizer levels (page IO)",
        ["query", "optimizer", "rows", "est cost", "exec IO"],
        rows,
        notes=[
            "paper shape: full <= greedy <= traditional in estimated "
            "cost on every query; all three return identical results."
        ],
    )
    return db, rows


def test_e11_cost_ordering(tpcd_rows, benchmark, bench_rounds):
    db, rows = tpcd_rows
    for label, _ in QUERIES:
        per_query = {
            optimizer: float(est)
            for lbl, optimizer, _, est, _ in rows
            if lbl == label
        }
        assert per_query["full"] <= per_query["traditional"] + 1e-9
    benchmark.pedantic(
        lambda: db.optimize(REVENUE_PER_CUSTOMER_SQL, optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e11_execution_throughput(tpcd_rows, benchmark, bench_rounds):
    db, _ = tpcd_rows
    result = db.optimize(SUPPLIER_SHARE_SQL, optimizer="full")

    def execute():
        rows, _ = db.execute_plan(result.plan)
        assert rows.rows

    benchmark.pedantic(execute, rounds=bench_rounds, iterations=1)
