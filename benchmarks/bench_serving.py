"""Serving throughput — plan cache, prepared statements, mixed traffic.

Two phases:

**Plan overhead** (in-process sessions, no network, so the numbers
isolate parse+bind+optimize): one join+group-by query is executed many
times through three delivery paths — cold (plan cache off: every run
pays the optimizer), warm plan cache (signature lookup replaces
optimization), and PREPARE/EXECUTE (plan-template substitution replaces
even parse+bind). Each run's ``SessionResult.plan_seconds`` is the
planning overhead; the ``--assert-speedup`` gate (CI uses 5.0) requires
prepared execution's mean overhead to be at least that factor below
cold's.

**Mixed traffic** (line-protocol server over loopback): 4 reader
clients issue ad-hoc, prepared, and materialized-view queries while 1
writer client appends deterministic ledger batches and periodically
refreshes the matview. Because the ledger's amounts are ``1..k``, any
*snapshot-consistent* answer satisfies ``sum == k(k+1)/2`` for the
``k`` implied by its count — exactly the row bag a serial execution at
some insert prefix would produce. Any torn read (a count from one
version paired with a sum from another) breaks the invariant and is
counted as a wrong answer; the gate requires zero. Reported per kind:
requests, qps, and p50/p99 latency.

``make bench-serve`` writes ``BENCH_serving.json`` at the repository
root; ``make bench-serve-smoke`` (CI) runs a small configuration with
both gates asserted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )

import random

from reporting import machine_metadata, report_table

from repro.cost.params import CostParams
from repro.db import Database
from repro.server.net import ServerThread

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"
)

OVERHEAD_SQL = (
    "SELECT e.dno, COUNT(*) AS c, SUM(e.sal) AS total FROM emp e, dept d "
    "WHERE e.dno = d.dno AND e.age > 30 AND d.loc = 1 "
    "GROUP BY e.dno HAVING SUM(e.sal) > 1000"
)
OVERHEAD_PREPARED = (
    "SELECT e.dno, COUNT(*) AS c, SUM(e.sal) AS total FROM emp e, dept d "
    "WHERE e.dno = d.dno AND e.age > $1 AND d.loc = $2 "
    "GROUP BY e.dno HAVING SUM(e.sal) > $3"
)


def overhead_database(rows: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    db = Database(CostParams(memory_pages=32))
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept",
        [("dno", "int"), ("budget", "float"), ("loc", "int")],
        primary_key=["dno"],
    )
    db.insert(
        "emp",
        [
            (i, i % 11, float(rng.randint(20_000, 120_000)),
             rng.randint(18, 65))
            for i in range(rows)
        ],
    )
    db.insert(
        "dept",
        [(d, float(rng.randint(100_000, 900_000)), d % 3) for d in range(11)],
    )
    db.create_index("emp_dno_idx", "emp", ["dno"])
    db.analyze()
    return db


def measure_plan_overhead(rows: int, iterations: int) -> Dict[str, object]:
    db = overhead_database(rows)

    def mean_ms(samples: Sequence[float]) -> float:
        return 1000.0 * sum(samples) / len(samples)

    with db.session(use_plan_cache=False) as session:
        cold = [
            session.execute(OVERHEAD_SQL).plan_seconds
            for _ in range(iterations)
        ]
    with db.session() as session:
        session.execute(OVERHEAD_SQL)  # populate the cache
        cached_results = [
            session.execute(OVERHEAD_SQL) for _ in range(iterations)
        ]
        assert all(r.cache_hit for r in cached_results)
        cached = [r.plan_seconds for r in cached_results]
        session.execute(f"PREPARE overhead AS {OVERHEAD_PREPARED}")
        prepared = [
            session.execute("EXECUTE overhead(30, 1, 1000)").plan_seconds
            for _ in range(iterations)
        ]
    return {
        "query": OVERHEAD_SQL,
        "rows": rows,
        "iterations": iterations,
        "cold_plan_ms": mean_ms(cold),
        "cached_plan_ms": mean_ms(cached),
        "prepared_plan_ms": mean_ms(prepared),
        "speedup_cached": mean_ms(cold) / max(mean_ms(cached), 1e-9),
        "speedup_prepared": mean_ms(cold) / max(mean_ms(prepared), 1e-9),
    }


# ----------------------------------------------------------------------
# Mixed traffic
# ----------------------------------------------------------------------

ADHOC_SQL = (
    "SELECT g, COUNT(*) AS c, SUM(amount) AS s FROM ledger GROUP BY g"
)
PREPARED_SQL = (
    "PREPARE sums AS SELECT g, COUNT(*) AS c, SUM(amount) AS s "
    "FROM ledger WHERE g = $1 GROUP BY g"
)
MATVIEW_SQL = "SELECT v.g, v.c, v.s FROM vledger v"


def _is_prefix_answer(count: int, total: int) -> bool:
    """True iff (count, total) is the answer a serial execution at some
    insert prefix would give: k rows of amounts 1..k plus the seed row."""
    k = count - 1
    return k >= 0 and total == k * (k + 1) // 2


def run_mixed_traffic(
    readers: int,
    batches: int,
    rows_per_batch: int,
    requests_per_reader: int,
    refresh_every: int,
) -> Dict[str, object]:
    db = Database()
    db.create_table(
        "ledger", [("g", "int"), ("seq", "int"), ("amount", "int")]
    )
    db.insert("ledger", [(0, 0, 0)])
    db.execute(
        "CREATE MATERIALIZED VIEW vledger AS "
        "SELECT g, COUNT(*) AS c, SUM(amount) AS s FROM ledger GROUP BY g"
    )

    latencies: Dict[str, List[float]] = {
        "adhoc": [],
        "prepared": [],
        "matview": [],
        "insert": [],
        "refresh": [],
    }
    wrong: List[str] = []
    errors: List[BaseException] = []
    lock = threading.Lock()

    def timed(client, kind: str, sql: str):
        start = perf_counter()
        columns, rows = client.execute(sql)
        elapsed = perf_counter() - start
        with lock:
            latencies[kind].append(elapsed)
        return columns, rows

    def check(kind: str, rows) -> None:
        for row in rows:
            count, total = int(row[-2]), int(float(row[-1]))
            if not _is_prefix_answer(count, total):
                with lock:
                    wrong.append(f"{kind}: count={count} sum={total}")

    def writer(server: ServerThread) -> None:
        try:
            with server.client() as client:
                seq = 1
                for batch in range(batches):
                    values = ", ".join(
                        f"(0, {seq + i}, {seq + i})"
                        for i in range(rows_per_batch)
                    )
                    timed(
                        client, "insert", f"INSERT INTO ledger VALUES {values}"
                    )
                    seq += rows_per_batch
                    if (batch + 1) % refresh_every == 0:
                        timed(
                            client,
                            "refresh",
                            "REFRESH MATERIALIZED VIEW vledger",
                        )
        except BaseException as error:
            errors.append(error)

    def reader(server: ServerThread, identity: int) -> None:
        try:
            with server.client() as client:
                client.execute(PREPARED_SQL)
                for position in range(requests_per_reader):
                    choice = (identity + position) % 3
                    if choice == 0:
                        _, rows = timed(client, "adhoc", ADHOC_SQL)
                        check("adhoc", rows)
                    elif choice == 1:
                        _, rows = timed(client, "prepared", "EXECUTE sums(0)")
                        check("prepared", rows)
                    else:
                        _, rows = timed(client, "matview", MATVIEW_SQL)
                        check("matview", rows)
        except BaseException as error:
            errors.append(error)

    wall_start = perf_counter()
    with ServerThread(db, port=0) as server:
        threads = [
            threading.Thread(target=reader, args=(server, identity))
            for identity in range(readers)
        ]
        write_thread = threading.Thread(target=writer, args=(server,))
        for t in threads:
            t.start()
        write_thread.start()
        for t in threads:
            t.join()
        write_thread.join()
    wall = perf_counter() - wall_start

    if errors:
        raise errors[0]

    expected = 1 + batches * rows_per_batch
    final = db.query("SELECT g, COUNT(*) AS c FROM ledger GROUP BY g")
    if final.rows[0][1] != expected:
        wrong.append(
            f"final count {final.rows[0][1]} != expected {expected}"
        )

    def percentile(samples: List[float], fraction: float) -> float:
        ordered = sorted(samples)
        index = min(
            len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))
        )
        return 1000.0 * ordered[index]

    def summarize(kind: str) -> Dict[str, object]:
        samples = latencies[kind]
        if not samples:
            return {"requests": 0}
        return {
            "requests": len(samples),
            "p50_ms": percentile(samples, 0.50),
            "p99_ms": percentile(samples, 0.99),
        }

    read_samples = (
        latencies["adhoc"] + latencies["prepared"] + latencies["matview"]
    )
    return {
        "readers": readers,
        "writer_batches": batches,
        "rows_per_batch": rows_per_batch,
        "refresh_every": refresh_every,
        "requests": len(read_samples),
        "wall_seconds": wall,
        "qps": len(read_samples) / wall if wall else 0.0,
        "p50_ms": percentile(read_samples, 0.50),
        "p99_ms": percentile(read_samples, 0.99),
        "wrong_answers": len(wrong),
        "wrong_answer_samples": wrong[:10],
        "by_kind": {kind: summarize(kind) for kind in latencies},
        "plan_cache": db.plan_cache.as_dict(),
    }


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (fewer rows, iterations, batches)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless prepared planning overhead is X times below "
        "cold, and the mixed workload had zero wrong answers",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        overhead = measure_plan_overhead(rows=2_000, iterations=40)
        mixed = run_mixed_traffic(
            readers=4,
            batches=12,
            rows_per_batch=5,
            requests_per_reader=30,
            refresh_every=4,
        )
    else:
        overhead = measure_plan_overhead(rows=20_000, iterations=200)
        mixed = run_mixed_traffic(
            readers=4,
            batches=60,
            rows_per_batch=10,
            requests_per_reader=150,
            refresh_every=5,
        )

    payload = {
        "experiment": "serving",
        "smoke": bool(args.smoke),
        "machine": machine_metadata(),
        "plan_overhead": overhead,
        "mixed_traffic": mixed,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    report_table(
        "serving_overhead",
        "planning overhead per delivery path",
        ["path", "plan ms/query", "speedup vs cold"],
        [
            ["cold (no cache)", f"{overhead['cold_plan_ms']:.3f}", "1.0x"],
            [
                "plan-cache hit",
                f"{overhead['cached_plan_ms']:.3f}",
                f"{overhead['speedup_cached']:.1f}x",
            ],
            [
                "prepared EXECUTE",
                f"{overhead['prepared_plan_ms']:.3f}",
                f"{overhead['speedup_prepared']:.1f}x",
            ],
        ],
        notes=[f"query: {OVERHEAD_SQL}"],
    )
    kinds = ["adhoc", "prepared", "matview", "insert", "refresh"]
    report_table(
        "serving_mixed",
        f"mixed traffic: {mixed['readers']} readers + 1 writer "
        f"({mixed['qps']:.0f} read qps, "
        f"{mixed['wrong_answers']} wrong answers)",
        ["kind", "requests", "p50 ms", "p99 ms"],
        [
            [
                kind,
                mixed["by_kind"][kind].get("requests", 0),
                f"{mixed['by_kind'][kind].get('p50_ms', 0.0):.2f}",
                f"{mixed['by_kind'][kind].get('p99_ms', 0.0):.2f}",
            ]
            for kind in kinds
        ],
        notes=[
            "every read answer checked against the serial prefix-sum "
            "invariant (snapshot consistency)",
        ],
    )

    failures = []
    if mixed["wrong_answers"]:
        failures.append(
            f"{mixed['wrong_answers']} snapshot-inconsistent answers: "
            f"{mixed['wrong_answer_samples']}"
        )
    if args.assert_speedup is not None:
        if overhead["speedup_prepared"] < args.assert_speedup:
            failures.append(
                f"prepared planning speedup "
                f"{overhead['speedup_prepared']:.1f}x is below the "
                f"{args.assert_speedup:.1f}x gate"
            )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
