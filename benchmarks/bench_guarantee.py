"""E6 — the no-worse guarantee, randomized.

Paper claim (Section 5): "our cost-based optimization algorithm is
guaranteed to pick a plan that is no worse than the traditional
optimization algorithm", and (from [CS94]) it "often produc[es]
significantly better plans".

Regenerates: over a seeded population of random canonical-form queries,
(i) zero guarantee violations, (ii) the distribution of estimated-cost
improvement factors, (iii) correctness of every chosen plan against the
brute-force reference.
"""

import pytest

from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.optimizer import optimize_query, optimize_traditional
from repro.workloads import RandomQueryConfig, random_queries
from reporting import report_table

QUERY_COUNT = 40


@pytest.fixture(scope="module")
def guarantee_data():
    db, queries = random_queries(
        RandomQueryConfig(
            seed=101, queries=QUERY_COUNT, fact_rows=400, dim_rows=30
        )
    )
    factors = []
    violations = 0
    mismatches = 0
    improved = 0
    for query in queries:
        full = optimize_query(query, db.catalog, db.params)
        traditional = optimize_traditional(query, db.catalog, db.params)
        if full.cost > traditional.cost + 1e-9:
            violations += 1
        factor = traditional.cost / max(full.cost, 1e-9)
        factors.append(factor)
        if factor > 1.001:
            improved += 1
        reference = evaluate_canonical(query, db.catalog)
        rows, _ = db.execute_plan(full.plan)
        if not rows_equal_bag(reference.rows, rows.rows):
            mismatches += 1

    factors.sort()
    def percentile(fraction):
        return factors[min(len(factors) - 1, int(fraction * len(factors)))]

    rows = [
        ("queries", QUERY_COUNT),
        ("guarantee violations", violations),
        ("result mismatches", mismatches),
        ("strictly improved", improved),
        ("median improvement", f"{percentile(0.5):.2f}x"),
        ("p90 improvement", f"{percentile(0.9):.2f}x"),
        ("max improvement", f"{max(factors):.2f}x"),
    ]
    report_table(
        "E6",
        "No-worse guarantee over random canonical queries",
        ["metric", "value"],
        rows,
        notes=[
            "paper shape: violations = 0 always. At this tiny scale "
            "every plan fits in memory so costs tie; improvements "
            "appear past the memory cliff (E6b) and on the paper's "
            "example shapes (E1/E4/E8/E11)."
        ],
    )
    return db, queries, violations, mismatches, factors


def test_e6_no_violations(guarantee_data, benchmark, bench_rounds):
    db, queries, violations, mismatches, _ = guarantee_data
    assert violations == 0
    assert mismatches == 0
    benchmark.pedantic(
        lambda: optimize_query(queries[0], db.catalog, db.params),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e6_some_queries_improve(guarantee_data, benchmark, bench_rounds):
    db, queries, _, _, factors = guarantee_data
    assert max(factors) >= 1.0
    benchmark.pedantic(
        lambda: optimize_traditional(queries[0], db.catalog, db.params),
        rounds=bench_rounds,
        iterations=1,
    )


@pytest.fixture(scope="module")
def improvement_data():
    """Larger instances (past the memory cliff) where plan choices
    actually differ; correctness is checked full-vs-traditional since
    the brute-force reference cannot scale to these sizes."""
    db, queries = random_queries(
        RandomQueryConfig(
            seed=202,
            queries=15,
            fact_rows=9000,
            dim_rows=3000,
            memory_pages=8,
        )
    )
    estimated = []
    executed = []
    violations = 0
    mismatches = 0
    for query in queries:
        full = optimize_query(query, db.catalog, db.params)
        traditional = optimize_traditional(query, db.catalog, db.params)
        if full.cost > traditional.cost + 1e-9:
            violations += 1
        estimated.append(traditional.cost / max(full.cost, 1e-9))
        full_rows, full_io = db.execute_plan(full.plan)
        trad_rows, trad_io = db.execute_plan(traditional.plan)
        if not rows_equal_bag(full_rows.rows, trad_rows.rows):
            mismatches += 1
        executed.append(trad_io.total / max(1, full_io.total))

    improved = sum(1 for factor in estimated if factor > 1.001)
    rows = [
        ("queries", len(queries)),
        ("guarantee violations", violations),
        ("full vs traditional mismatches", mismatches),
        ("strictly improved (estimated)", improved),
        ("max improvement (estimated)", f"{max(estimated):.2f}x"),
        ("max improvement (executed IO)", f"{max(executed):.2f}x"),
        (
            "mean improvement (executed IO)",
            f"{sum(executed) / len(executed):.2f}x",
        ),
    ]
    report_table(
        "E6b",
        "No-worse guarantee at scale (9000-row facts, 8-page memory)",
        ["metric", "value"],
        rows,
        notes=[
            "paper shape: still zero violations, and a fraction of "
            "queries strictly improves in estimated cost (the "
            "optimizer's objective). Executed-IO wins on the paper's "
            "own example shapes are shown in E1/E4/E8."
        ],
    )
    return db, queries, violations, mismatches, estimated


def test_e6b_improvements_appear_at_scale(
    improvement_data, benchmark, bench_rounds
):
    db, queries, violations, mismatches, estimated = improvement_data
    assert violations == 0
    assert mismatches == 0
    assert any(factor > 1.001 for factor in estimated)
    benchmark.pedantic(
        lambda: optimize_query(queries[1], db.catalog, db.params),
        rounds=bench_rounds,
        iterations=1,
    )
