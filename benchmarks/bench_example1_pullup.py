"""E1 — Example 1 / Figure 1: the pull-up crossover.

Paper claim (Section 3): the pulled-up single-block form (query B) beats
the traditional view form (A1/A2) when the outer filter is selective and
there are many departments; the opposite regime favours the traditional
form. The cost-based optimizer must pick the winner in each regime.

Regenerates: executed page IO of both strategies over a (selectivity ×
departments) sweep, plus the optimizer's choice per cell.
"""

import pytest

from repro.workloads import EmpDeptConfig, build_empdept
from reporting import report_table

EMPLOYEES = 8000
THRESHOLDS = [19, 30, 55]
DEPARTMENTS = [10, 1000, 4000]


def example1_sql(age_threshold: int) -> str:
    return f"""
    with a1(dno, asal) as (
        select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
    )
    select e1.sal from emp e1, a1 b
    where e1.dno = b.dno and e1.age < {age_threshold} and e1.sal > b.asal
    """


def build(departments: int):
    return build_empdept(
        EmpDeptConfig(
            employees=EMPLOYEES,
            departments=departments,
            uniform_ages=True,
            memory_pages=8,
            with_indexes=False,
        )
    )


@pytest.fixture(scope="module")
def crossover_rows():
    rows = []
    for threshold in THRESHOLDS:
        for departments in DEPARTMENTS:
            db = build(departments)
            sql = example1_sql(threshold)
            traditional = db.query(sql, optimizer="traditional")
            full = db.query(sql, optimizer="full")
            assert sorted(traditional.rows) == sorted(full.rows)
            pulled = bool(full.optimization.pull_choices.get("b"))
            rows.append(
                (
                    f"age<{threshold}",
                    departments,
                    traditional.executed_io.total,
                    full.executed_io.total,
                    "pull-up" if pulled else "local",
                    f"{traditional.executed_io.total / max(1, full.executed_io.total):.2f}x",
                )
            )
    report_table(
        "E1",
        "Example 1 pull-up crossover (executed page IO)",
        ["filter", "depts", "trad IO", "full IO", "choice", "speedup"],
        rows,
        notes=[
            "paper shape: pull-up chosen only where it wins (selective "
            "filter, many groups); never worse than traditional."
        ],
    )
    return rows


def test_e1_optimizer_never_loses(crossover_rows, benchmark, bench_rounds):
    # the cost-based choice must never execute worse than traditional
    for _, _, trad_io, full_io, _, _ in crossover_rows:
        assert full_io <= trad_io
    # pull-up must win somewhere (the crossover exists)
    assert any(choice == "pull-up" for *_, choice, _ in crossover_rows)

    db = build(4000)
    sql = example1_sql(19)
    benchmark.pedantic(
        lambda: db.optimize(sql, optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e1_traditional_optimization_speed(benchmark, bench_rounds):
    db = build(1000)
    sql = example1_sql(30)
    benchmark.pedantic(
        lambda: db.optimize(sql, optimizer="traditional"),
        rounds=bench_rounds,
        iterations=1,
    )
