"""Benchmark-suite configuration."""

import pytest


@pytest.fixture(scope="session")
def bench_rounds():
    """Rounds for pedantic benchmarks (kept small: the interesting
    output is the experiment tables, not microsecond noise)."""
    return 3
