"""E3 — Figure 2(b): simple coalescing grouping.

Paper claim (Section 4.2): when a relation's join partner is not
key-joined (so invariant grouping cannot move the group-by), a partial
group-by can still be *added* below the join and coalesced above —
provided the aggregate functions are decomposable. The early partial
aggregation shrinks the join input.

Regenerates: executed page IO of the single late group-by vs the
coalescing pair, swept over rows-per-group (the data-reduction factor),
plus the inapplicability of the transform for a holistic aggregate.
"""

import random

import pytest

from repro import CostParams, Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import col
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import rows_equal_bag
from repro.errors import TransformError
from repro.transforms import coalesce_plan
from reporting import report_table

GROUPS = 30


def build(rows_per_group: int) -> Database:
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "sales", [("sid", "int"), ("gid", "int"), ("amt", "float")],
        primary_key=["sid"],
    )
    # channel has several rows per gid: NOT key-joined, so invariant
    # grouping is inapplicable and only coalescing can group early
    db.create_table(
        "channel", [("cid", "int"), ("gid", "int"), ("region", "int")],
        primary_key=["cid"],
    )
    rng = random.Random(30)
    db.insert(
        "sales",
        [
            (i, i % GROUPS, float(rng.randint(1, 99)))
            for i in range(GROUPS * rows_per_group)
        ],
    )
    db.insert(
        "channel",
        [(c, c % GROUPS, c % 5) for c in range(GROUPS * 4)],
    )
    db.analyze()
    return db


def late_group_plan(db: Database, func: str = "avg") -> GroupByNode:
    sales_columns = db.catalog.table("sales").columns
    channel_columns = db.catalog.table("channel").columns
    join = JoinNode(
        ScanNode("sales", "s", table_row_schema("s", sales_columns).fields),
        ScanNode(
            "channel", "c", table_row_schema("c", channel_columns).fields
        ),
        method="smj",
        equi_keys=[(("s", "gid"), ("c", "gid"))],
    )
    return GroupByNode(
        join,
        group_keys=[("c", "region")],
        aggregates=[("out", AggregateCall(func, col("s.amt")))],
        projection=[("c", "region"), (None, "out")],
    )


def run_plan(db, plan):
    CostModel(db.catalog, db.params).annotate_tree(plan)
    context = ExecutionContext(db.catalog, db.io, db.params)
    with db.io.measure() as span:
        result = execute_plan(plan, context)
    return result, span.delta.total


@pytest.fixture(scope="module")
def coalescing_rows():
    rows = []
    for rows_per_group in (2, 40, 300):
        db = build(rows_per_group)
        late = late_group_plan(db)
        early = coalesce_plan(late_group_plan(db))
        late_result, late_io = run_plan(db, late)
        early_result, early_io = run_plan(db, early)
        assert rows_equal_bag(late_result.rows, early_result.rows)
        rows.append(
            (
                rows_per_group,
                late_io,
                early_io,
                f"{late_io / max(1, early_io):.2f}x",
            )
        )
    report_table(
        "E3",
        "Simple coalescing grouping (late G vs early partial G, page IO)",
        ["rows/group", "late-G IO", "coalesced IO", "speedup"],
        rows,
        notes=[
            "paper shape: the added early group-by wins as the "
            "data-reduction factor (rows per group) grows; at tiny "
            "factors it is pure overhead."
        ],
    )
    return rows


def test_e3_coalescing_wins_at_scale(
    coalescing_rows, benchmark, bench_rounds
):
    assert coalescing_rows[-1][1] > coalescing_rows[-1][2]
    db = build(100)
    benchmark.pedantic(
        lambda: coalesce_plan(late_group_plan(db)),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e3_holistic_aggregate_not_coalescable(benchmark, bench_rounds):
    db = build(10)
    with pytest.raises(TransformError):
        coalesce_plan(late_group_plan(db, func="median"))
    benchmark.pedantic(
        lambda: run_plan(db, late_group_plan(db, func="median")),
        rounds=bench_rounds,
        iterations=1,
    )
