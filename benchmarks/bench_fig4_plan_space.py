"""E4 — Figure 4: the four plan shapes for a one-view query.

The paper's Figure 4 draws four alternative executions of a query with
one aggregate view: (a) the traditional plan (view optimized locally,
group-by after its joins), (b) push the group-by down inside a block,
(c) pull the view's group-by above an outer join, (d) push and pull
combined. The optimizer's search space must contain all four, and the
winner must move with the data regime.

Regenerates: estimated cost and executed page IO of the best plan under
four optimizer configurations that correspond to the four shapes, over
two regimes (selective outer filter / unselective), plus the shape the
full optimizer settles on per regime.
"""

import pytest

from repro import OptimizerOptions
from repro.workloads import EmpDeptConfig, build_empdept
from reporting import report_table

CONFIGS = [
    ("(a) traditional", "traditional", None),
    (
        "(b) push only",
        "full",
        OptimizerOptions(enable_pullup=False, enable_invariant_split=False),
    ),
    (
        "(c) pull only",
        "full",
        OptimizerOptions(enable_pushdown=False),
    ),
    ("(d) push+pull", "full", None),
]


def example1_sql(threshold: int) -> str:
    return f"""
    with a1(dno, asal) as (
        select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
    )
    select e1.sal from emp e1, a1 b
    where e1.dno = b.dno and e1.age < {threshold} and e1.sal > b.asal
    """


def build():
    return build_empdept(
        EmpDeptConfig(
            employees=8000,
            departments=4000,
            uniform_ages=True,
            memory_pages=8,
            with_indexes=False,
        )
    )


@pytest.fixture(scope="module")
def figure4_rows():
    db = build()
    rows = []
    baselines = {}
    for regime, threshold in (("selective", 19), ("unselective", 55)):
        sql = example1_sql(threshold)
        reference_rows = None
        for label, optimizer, options in CONFIGS:
            result = db.query(sql, optimizer=optimizer, options=options)
            if reference_rows is None:
                reference_rows = sorted(result.rows)
            else:
                assert sorted(result.rows) == reference_rows
            rows.append(
                (
                    regime,
                    label,
                    f"{result.estimated_cost:.0f}",
                    result.executed_io.total,
                    dict(result.optimization.pull_choices),
                )
            )
            baselines[(regime, label)] = result.executed_io.total
    report_table(
        "E4",
        "Figure 4 plan space: four strategies, two regimes (page IO)",
        ["regime", "strategy", "est cost", "exec IO", "pull choice"],
        rows,
        notes=[
            "paper shape: (c)/(d) win in the selective regime via "
            "pull-up; in the unselective regime the pull-up plans "
            "degrade and (a)/(b) win — (d) always matches the best.",
        ],
    )
    return baselines


def test_e4_combined_strategy_is_best_everywhere(
    figure4_rows, benchmark, bench_rounds
):
    for regime in ("selective", "unselective"):
        combined = figure4_rows[(regime, "(d) push+pull")]
        for label, _, _ in CONFIGS:
            assert combined <= figure4_rows[(regime, label)]
    db = build()
    benchmark.pedantic(
        lambda: db.optimize(example1_sql(19), optimizer="full"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e4_pullup_wins_selective_regime(
    figure4_rows, benchmark, bench_rounds
):
    selective_traditional = figure4_rows[("selective", "(a) traditional")]
    selective_pull = figure4_rows[("selective", "(c) pull only")]
    assert selective_pull < selective_traditional
    db = build()
    benchmark.pedantic(
        lambda: db.optimize(
            example1_sql(19),
            optimizer="full",
            options=OptimizerOptions(enable_pushdown=False),
        ),
        rounds=bench_rounds,
        iterations=1,
    )
