"""Eager aggregation payoff — rows into the join on a fan-out PK-FK star.

One workload, the shape *Memory-Efficient Group-by Aggregates over
Multi-Way Joins* motivates: a fact table with heavy fan-out per join
key feeding a PK-FK join into a small dimension, grouped on a
dimension attribute with few distinct groups. The eager alternative
collapses the fact side to one partial row per join key **below** the
join, so the join processes ~keys rows instead of ~facts rows; the
merge group-by above the join coalesces and finalizes.

The same query runs twice against the same database:

- **eager** — the default optimizer, which adopts the partial
  group-by (asserted via ``SearchStats.eager_alternatives_adopted``);
- **lazy** — ``OptimizerOptions(enable_eager_aggregation=False)``,
  the exact pre-eager plan.

For each run the executed plan is walked and every join's input rows
(the actual row counts of its children) are summed. The
``--assert-reduction`` gate (CI uses 2.0) requires
``lazy_rows / eager_rows`` to meet the factor; eager-vs-lazy answer
identity is always asserted. Wall-clock and charged IO are reported
alongside, but the gate is on the row reduction — a plan-shape fact
that is stable across machines.

``make bench-eager`` writes ``BENCH_eager.json`` at the repository
root; ``make bench-eager-smoke`` (CI) runs a small configuration with
the gate asserted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )

from reporting import machine_metadata, report_table

from repro.algebra.plan import JoinNode, PlanNode
from repro.cost.params import CostParams
from repro.db import Database
from repro.optimizer.options import OptimizerOptions

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_eager.json"
)

LAZY = OptimizerOptions(enable_eager_aggregation=False)

QUERY = (
    "SELECT d.g AS g, SUM(f.v) AS s, COUNT(*) AS c, MAX(f.v) AS m "
    "FROM fact f, dim d WHERE f.k = d.k GROUP BY d.g"
)


def build_database(facts: int, keys: int, groups: int) -> Database:
    """A high-fan-out PK-FK star: *facts* rows over *keys* join keys
    (facts/keys duplicates each), dimension mapping keys to *groups*
    group values. The weighted CPU+IO objective is what lets the
    optimizer see the fan-out collapse pay off; dyadic amounts keep
    SUM exact so answer identity is exact equality."""
    db = Database(CostParams(memory_pages=16, cpu_tuple_weight=0.01))
    db.create_table("fact", [("fno", "int"), ("k", "int"), ("v", "float")])
    db.create_table(
        "dim", [("k", "int"), ("g", "int")], primary_key=["k"]
    )
    db.insert(
        "fact",
        [(i, i % keys, (i % 37) * 0.25) for i in range(facts)],
    )
    db.insert("dim", [(k, k % groups) for k in range(keys)])
    db.analyze()
    return db


def rows_into_joins(plan: PlanNode) -> int:
    """Total executed rows entering join operators: the sum of every
    join child's actual row count, over the whole plan."""
    total = 0
    if isinstance(plan, JoinNode):
        for child in plan.children:
            total += child.actual_rows or 0
    for child in plan.children:
        total += rows_into_joins(child)
    return total


def run_mode(
    db: Database,
    options: Optional[OptimizerOptions],
    repeats: int,
) -> Dict[str, object]:
    samples: List[float] = []
    result = None
    for _ in range(repeats):
        start = perf_counter()
        result = db.query(QUERY, options=options)
        samples.append(perf_counter() - start)
    stats = db.optimize(QUERY, options=options).stats
    return {
        "rows_into_joins": rows_into_joins(result.plan),
        "rows": sorted(tuple(row) for row in result.rows),
        "io_total": result.executed_io.total,
        "estimated_cost": result.estimated_cost,
        "mean_ms": 1000.0 * sum(samples) / len(samples),
        "best_ms": 1000.0 * min(samples),
        "eager_adopted": stats.eager_alternatives_adopted,
        "eager_considered": stats.eager_alternatives_considered,
        "explain": result.explain(analyze=True),
    }


def run_workload(
    facts: int, keys: int, groups: int, repeats: int
) -> Tuple[Dict[str, object], List[str]]:
    db = build_database(facts, keys, groups)
    eager = run_mode(db, None, repeats)
    lazy = run_mode(db, LAZY, repeats)

    failures: List[str] = []
    if eager["rows"] != lazy["rows"]:
        failures.append(
            "eager and lazy plans disagree on the answer bag: "
            f"{len(eager['rows'])} vs {len(lazy['rows'])} rows"
        )
    if not eager["eager_adopted"]:
        failures.append(
            "the optimizer did not adopt an eager alternative "
            f"(considered {eager['eager_considered']})"
        )
    if lazy["eager_considered"]:
        failures.append(
            "the lazy baseline still generated eager alternatives — "
            "enable_eager_aggregation=False is not ablating"
        )

    reduction = eager["rows_into_joins"] and (
        lazy["rows_into_joins"] / eager["rows_into_joins"]
    )
    payload = {
        "facts": facts,
        "keys": keys,
        "groups": groups,
        "fanout": facts // keys,
        "repeats": repeats,
        "rows_into_joins_eager": eager["rows_into_joins"],
        "rows_into_joins_lazy": lazy["rows_into_joins"],
        "row_reduction": reduction,
        "io_eager": eager["io_total"],
        "io_lazy": lazy["io_total"],
        "mean_ms_eager": eager["mean_ms"],
        "mean_ms_lazy": lazy["mean_ms"],
        "eager_adopted": eager["eager_adopted"],
        "eager_considered": eager["eager_considered"],
        "answer_identical": eager["rows"] == lazy["rows"],
        "explain_eager": eager["explain"],
        "explain_lazy": lazy["explain"],
    }
    return payload, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (fewer fact rows, fewer repeats)",
    )
    parser.add_argument(
        "--assert-reduction",
        type=float,
        default=None,
        metavar="X",
        help="fail unless rows entering the join shrink by at least "
        "X times under the eager plan (answer identity is always "
        "asserted)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        workload, failures = run_workload(
            facts=12_000, keys=96, groups=8, repeats=3
        )
    else:
        workload, failures = run_workload(
            facts=60_000, keys=240, groups=12, repeats=5
        )

    payload = {
        "experiment": "eager_aggregation",
        "smoke": bool(args.smoke),
        "machine": machine_metadata(),
        "query": QUERY,
        "workload": workload,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    reduction = workload["row_reduction"]
    report_table(
        "eager_aggregation",
        f"rows into the join, eager vs lazy "
        f"(fan-out {workload['fanout']}x, "
        f"{workload['groups']} groups)",
        ["mode", "rows into join", "charged IO", "mean ms"],
        [
            [
                "lazy (pushdown off)",
                workload["rows_into_joins_lazy"],
                workload["io_lazy"],
                f"{workload['mean_ms_lazy']:.2f}",
            ],
            [
                "eager (partial below join)",
                workload["rows_into_joins_eager"],
                workload["io_eager"],
                f"{workload['mean_ms_eager']:.2f}",
            ],
        ],
        notes=[
            f"row reduction {reduction:.1f}x; answers identical: "
            f"{workload['answer_identical']}; eager alternatives "
            f"adopted {workload['eager_adopted']}"
            f"/{workload['eager_considered']}",
            f"query: {QUERY}",
        ],
    )

    if args.assert_reduction is not None and (
        not reduction or reduction < args.assert_reduction
    ):
        failures.append(
            f"rows-into-join reduction {reduction:.2f}x is below the "
            f"{args.assert_reduction:.1f}x gate"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
