"""Materialized-view payoff — repeated aggregate queries and refresh.

Two measurement families, both metered in page IO by
``storage.iocounter``:

- **Answering**: a repeated grouped-aggregate workload over a large
  base table, run with view rewriting on and off
  (``OptimizerOptions(enable_view_rewrite=False)``). Each repetition
  with rewriting on scans only the tiny backing table, so the page-read
  ratio grows with the base-table size; the run asserts both paths
  return identical rows and records the ratio (the acceptance bar is
  >= 5x on at least one workload).
- **Maintenance**: after inserting a small delta, an incremental
  refresh (partials over the delta merged via accumulator ``merge()``)
  vs a forced full recompute, both as ``MaintenanceReport`` page-IO
  totals.

Run directly (``make bench-views``) to write ``BENCH_views.json`` at
the repository root and print the tables; ``--smoke`` runs a tiny
configuration for CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
from typing import Dict, List, Optional, Sequence

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )

from repro.db import Database
from repro.optimizer.options import OptimizerOptions

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_views.json"
)

NO_REWRITE = OptimizerOptions(enable_view_rewrite=False)

VIEW_BODY = (
    "select e.dno as dno, sum(e.sal) as s, count(e.eno) as n, "
    "avg(e.sal) as a, min(e.sal) as lo, max(e.sal) as hi "
    "from emp e group by e.dno"
)

QUERY_WORKLOADS = [
    (
        "group-avg",
        "select e.dno, avg(e.sal) as a from emp e group by e.dno",
    ),
    (
        "group-minmax-filtered",
        "select e.dno, min(e.sal) as lo, max(e.sal) as hi from emp e "
        "where e.dno < 10 group by e.dno",
    ),
    (
        "group-having",
        "select e.dno, sum(e.sal) as s from emp e group by e.dno "
        "having count(e.eno) > 5",
    ),
    (
        "view-by-name",
        "select m.dno, m.s, m.n from agg_by_dept m where m.dno >= 3",
    ),
]


def build_db(rows: int, departments: int, seed: int) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    db.insert(
        "emp",
        [
            (
                e,
                rng.randrange(departments),
                float(rng.randint(20_000, 120_000)),
                rng.randint(18, 65),
            )
            for e in range(rows)
        ],
    )
    db.analyze()
    db.create_materialized_view("agg_by_dept", VIEW_BODY)
    return db


def _measure_reads(db: Database, sql: str, repetitions: int, options):
    """Total page reads (and the last row list) over the repeated run."""
    reads = 0
    rows = None
    for _ in range(repetitions):
        result = db.query(sql, options=options)
        reads += result.executed_io.page_reads
        rows = result.rows
    return reads, rows


def run_bench(
    rows: int = 40_000,
    departments: int = 25,
    repetitions: int = 10,
    delta_rows: int = 200,
    seed: int = 0,
) -> Dict[str, object]:
    """The full measurement matrix, as a JSON-ready dict.

    Raises if rewriting changes any answer, and if no workload reaches
    the 5x page-read reduction the view is supposed to deliver.
    """
    db = build_db(rows, departments, seed)
    entries: List[Dict[str, object]] = []
    for name, sql in QUERY_WORKLOADS:
        base_reads, base_rows = _measure_reads(
            db, sql, repetitions, NO_REWRITE
        )
        view_reads, view_rows = _measure_reads(db, sql, repetitions, None)
        if sorted(map(repr, base_rows)) != sorted(map(repr, view_rows)):
            raise AssertionError(f"{name}: rewrite changed the answer")
        entries.append(
            {
                "workload": name,
                "query": sql,
                "repetitions": repetitions,
                "result_rows": len(view_rows),
                "page_reads_no_rewrite": base_reads,
                "page_reads_rewrite": view_reads,
                "read_ratio": base_reads / max(view_reads, 1),
            }
        )
    best_ratio = max(entry["read_ratio"] for entry in entries)
    if best_ratio < 5.0:
        raise AssertionError(
            f"expected a >=5x page-read reduction; best was {best_ratio:.2f}x"
        )

    # Maintenance: incremental refresh over a small delta vs a full
    # recompute of the same state.
    rng = random.Random(seed + 1)
    db.insert(
        "emp",
        [
            (
                rows + i,
                rng.randrange(departments),
                float(rng.randint(20_000, 120_000)),
                rng.randint(18, 65),
            )
            for i in range(delta_rows)
        ],
    )
    incremental = db.refresh_materialized_view("agg_by_dept")
    if incremental.mode != "incremental":
        raise AssertionError(
            f"expected an incremental refresh, got {incremental.mode!r}"
        )
    full = db.refresh_materialized_view("agg_by_dept", mode="full")
    maintenance = {
        "delta_rows": delta_rows,
        "incremental_io": incremental.io.total,
        "full_io": full.io.total,
        "io_ratio": full.io.total / max(incremental.io.total, 1),
    }
    return {
        "config": {
            "rows": rows,
            "departments": departments,
            "repetitions": repetitions,
            "delta_rows": delta_rows,
            "seed": seed,
        },
        "entries": entries,
        "maintenance": maintenance,
    }


def _print_tables(results: Dict[str, object]) -> None:
    header = (
        f"{'workload':<24} {'rows':>6} {'reads off':>10} "
        f"{'reads on':>9} {'ratio':>7}"
    )
    print(header)
    print("-" * len(header))
    for entry in results["entries"]:
        print(
            f"{entry['workload']:<24} {entry['result_rows']:>6} "
            f"{entry['page_reads_no_rewrite']:>10} "
            f"{entry['page_reads_rewrite']:>9} "
            f"{entry['read_ratio']:>6.1f}x"
        )
    maintenance = results["maintenance"]
    print(
        f"\nrefresh after {maintenance['delta_rows']} inserts: "
        f"incremental {maintenance['incremental_io']} IOs vs "
        f"full {maintenance['full_io']} IOs "
        f"({maintenance['io_ratio']:.1f}x)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="output JSON path",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI smoke runs (no JSON written "
        "unless --out is given explicitly)",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        results = run_bench(
            rows=5_000, departments=10, repetitions=3, delta_rows=25
        )
    else:
        results = run_bench()
    if not arguments.smoke or arguments.out != DEFAULT_OUTPUT:
        arguments.out.write_text(json.dumps(results, indent=1) + "\n")
        wrote = f"\nwrote {arguments.out}"
    else:
        wrote = "\nsmoke mode: no JSON written"
    _print_tables(results)
    print(wrote)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
