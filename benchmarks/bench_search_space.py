"""E7 — enumeration effort: "very moderate increase in search space".

Paper claim (Section 5.2, citing [CS94]): the greedy conservative
modification of the DP "results in very moderate increase in search
space while often producing significantly better plans"; Section 5.3
adds the pull-up enumeration, bounded by the predicate-sharing and
k-level restrictions.

Regenerates: enumeration counters (subsets expanded, joinplan calls,
plans retained) for the traditional DP, the greedy DP, and the full
optimizer at several k, aggregated over a query population.
"""

import pytest

from repro import OptimizerOptions
from repro.optimizer import optimize_query, optimize_traditional
from repro.workloads import RandomQueryConfig, random_queries
from reporting import report_table

CONFIGS = [
    ("traditional", None),
    ("greedy (k=0)", OptimizerOptions(k_level=0, enable_invariant_split=False,
                                      enable_pullup=False)),
    ("full k=1", OptimizerOptions(k_level=1)),
    ("full k=2", OptimizerOptions(k_level=2)),
    ("full k=2, no pred-share", OptimizerOptions(
        k_level=2, require_shared_predicate=False)),
    ("full k=2, no shared DP", OptimizerOptions(
        k_level=2, share_view_dp=False)),
]


@pytest.fixture(scope="module")
def search_rows():
    db, queries = random_queries(
        RandomQueryConfig(seed=77, queries=12, fact_rows=200, dim_rows=20)
    )
    rows = []
    baseline_joinplans = None
    for label, options in CONFIGS:
        totals = {"joinplans": 0, "subsets": 0, "retained": 0, "cost": 0.0}
        for query in queries:
            if label == "traditional":
                result = optimize_traditional(query, db.catalog, db.params)
            else:
                result = optimize_query(
                    query, db.catalog, db.params, options
                )
            totals["joinplans"] += result.stats.joinplan_calls
            totals["subsets"] += result.stats.subsets_expanded
            totals["retained"] += result.stats.plans_retained
            totals["cost"] += result.cost
        if baseline_joinplans is None:
            baseline_joinplans = totals["joinplans"]
        rows.append(
            (
                label,
                totals["joinplans"],
                totals["subsets"],
                totals["retained"],
                f"{totals['joinplans'] / baseline_joinplans:.2f}x",
                f"{totals['cost']:.0f}",
            )
        )
    report_table(
        "E7",
        "Search-space growth vs plan quality (12 random queries)",
        ["optimizer", "joinplans", "subsets", "plans kept",
         "effort vs trad", "sum est cost"],
        rows,
        notes=[
            "paper shape: greedy adds little effort; pull-up grows the "
            "space with k but the restrictions keep it bounded, and "
            "total plan cost only decreases."
        ],
    )
    return db, queries, rows


def test_e7_cost_monotone_in_search_space(
    search_rows, benchmark, bench_rounds
):
    db, queries, rows = search_rows
    costs = [float(row[5]) for row in rows]
    # traditional >= greedy >= full k=1 >= full k=2
    assert costs[0] >= costs[1] >= costs[2] >= costs[3] - 1e-6
    benchmark.pedantic(
        lambda: optimize_query(
            queries[0], db.catalog, db.params, OptimizerOptions(k_level=2)
        ),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e7_restrictions_bound_effort(search_rows, benchmark, bench_rounds):
    db, queries, rows = search_rows
    by_label = {row[0]: row for row in rows}
    # dropping predicate sharing can only grow the enumerated space
    assert (
        by_label["full k=2, no pred-share"][1] >= by_label["full k=2"][1]
    )
    # k=2 explores at least as much as k=1
    assert by_label["full k=2"][1] >= by_label["full k=1"][1]
    # Section 5.3's shared DP saves enumeration at equal plan quality
    assert (
        by_label["full k=2"][1] <= by_label["full k=2, no shared DP"][1]
    )
    assert float(by_label["full k=2"][5]) == pytest.approx(
        float(by_label["full k=2, no shared DP"][5])
    )
    benchmark.pedantic(
        lambda: optimize_query(
            queries[1],
            db.catalog,
            db.params,
            OptimizerOptions(k_level=1),
        ),
        rounds=bench_rounds,
        iterations=1,
    )
