"""E2 — Example 2 / Figure 2(a): invariant grouping push-down.

Paper claim (Section 4.1): query C (join dept, then group) can instead
be evaluated as D1/D2 (group emp first, then join dept) — group-by
placement should follow cost. Early grouping pays off when the
pre-group input is large relative to memory (the join spills) and the
group count is small; it is pointless when the join is already cheap.

Regenerates: executed page IO of the join-first and group-first plan
shapes (built explicitly via the plan-level transforms) over a sweep of
employees-per-department, plus the greedy optimizer's choice.
"""

import random

import pytest

from repro import CostParams, Database
from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import rows_equal_bag
from repro.transforms import push_down_plan
from reporting import report_table

DEPARTMENTS = 40


def build(emps_per_dept: int) -> Database:
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float")],
        primary_key=["eno"],
    )
    db.create_table(
        "dept", [("dno", "int"), ("budget", "float")], primary_key=["dno"]
    )
    rng = random.Random(20)
    total = DEPARTMENTS * emps_per_dept
    db.insert(
        "emp",
        [
            (i, i % DEPARTMENTS, float(rng.randint(10, 99)))
            for i in range(total)
        ],
    )
    db.insert(
        "dept",
        [
            (d, float(rng.randint(100_000, 2_000_000)))
            for d in range(DEPARTMENTS)
        ],
    )
    db.analyze()
    return db


def join_first_plan(db: Database) -> GroupByNode:
    """Query C's shape: emp join dept, then group by dno."""
    emp_columns = db.catalog.table("emp").columns
    dept_columns = db.catalog.table("dept").columns
    join = JoinNode(
        ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
        ScanNode(
            "dept",
            "d",
            table_row_schema("d", dept_columns).fields,
            filters=(Comparison("<", col("d.budget"), lit(1_000_000)),),
        ),
        method="smj",
        equi_keys=[(("e", "dno"), ("d", "dno"))],
    )
    return GroupByNode(
        join,
        group_keys=[("e", "dno")],
        aggregates=[("asal", AggregateCall("avg", col("e.sal")))],
        projection=[("e", "dno"), (None, "asal")],
    )


def run_plan(db, plan):
    CostModel(db.catalog, db.params).annotate_tree(plan)
    context = ExecutionContext(db.catalog, db.io, db.params)
    with db.io.measure() as span:
        result = execute_plan(plan, context)
    return result, span.delta.total, plan.props.cost


@pytest.fixture(scope="module")
def pushdown_rows():
    rows = []
    for emps_per_dept in (5, 50, 400):
        db = build(emps_per_dept)
        c_plan = join_first_plan(db)
        d_plan = push_down_plan(join_first_plan(db), db.catalog)
        c_result, c_io, c_est = run_plan(db, c_plan)
        d_result, d_io, d_est = run_plan(db, d_plan)
        assert rows_equal_bag(c_result.rows, d_result.rows)
        optimizer_io, early = optimizer_choice(db)
        rows.append(
            (
                emps_per_dept,
                c_io,
                d_io,
                optimizer_io,
                "group-first" if d_io < c_io else "join-first",
                "early-G" if early else "late-G",
            )
        )
    report_table(
        "E2",
        "Example 2 invariant grouping (query C vs D1/D2, page IO)",
        ["emps/dept", "C: join-first IO", "D: group-first IO",
         "optimizer IO", "cheaper shape", "optimizer G"],
        rows,
        notes=[
            "paper shape: early grouping (D) beats the sort-based "
            "join-first plan once the pre-group input dwarfs memory; "
            "the cost-based optimizer is never worse than either "
            "hand-built shape."
        ],
    )
    return rows


def optimizer_choice(db):
    """Executed IO and group placement of the greedy optimizer's plan."""
    sql = """
    select e.dno, avg(e.sal) as asal from emp e, dept d
    where e.dno = d.dno and d.budget < 1000000
    group by e.dno
    """
    result = db.query(sql, optimizer="greedy")
    early = result.optimization.stats.early_groupby_accepted > 0
    return result.executed_io.total, early


def test_e2_pushdown_crossover(pushdown_rows, benchmark, bench_rounds):
    # at the largest scale, group-first must win over the sort plan
    assert pushdown_rows[-1][4] == "group-first"
    db = build(100)
    benchmark.pedantic(
        lambda: push_down_plan(join_first_plan(db), db.catalog),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e2_optimizer_never_worse_than_either_shape(
    pushdown_rows, benchmark, bench_rounds
):
    for emps_per_dept, c_io, d_io, optimizer_io, _, _ in pushdown_rows:
        assert optimizer_io <= min(c_io, d_io)
    db = build(50)
    sql = (
        "select e.dno, avg(e.sal) as a from emp e, dept d "
        "where e.dno = d.dno group by e.dno"
    )
    benchmark.pedantic(
        lambda: db.optimize(sql, optimizer="greedy"),
        rounds=bench_rounds,
        iterations=1,
    )

