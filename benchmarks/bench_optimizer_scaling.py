"""Optimizer scaling — bitset connected-subset DP vs the seed enumerator.

Measures optimize-block wall-clock against the number of relations
(6, 8, 10, 12 leaves) on chain and star join graphs, for both the
greedy and the traditional DP, comparing the graph enumeration
(connected subsets over the bitset join graph) with the exhaustive
enumeration (every subset — the seed enumerator's search space). Both
must choose plans of identical cost; the graph enumeration just gets
there visiting O(n²) instead of 2ⁿ subsets on these topologies.

Run directly (``make bench-opt``) to write ``BENCH_optimizer_scaling.json``
at the repository root and print the scaling table. The tier-1 suite
runs :func:`run_scaling` at the smallest size only (see
``tests/test_joingraph.py``) so enumerator regressions surface in CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter
from typing import Dict, List, Sequence, Tuple

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )

from repro.optimizer.block import BaseLeaf, BlockOptimizer, GroupingSpec
from repro.workloads import JoinWorkloadConfig, build_join_workload

SIZES = (6, 8, 10, 12)
TOPOLOGIES = ("chain", "star")
MODES = ("greedy", "traditional")
ENUMERATIONS = ("graph", "exhaustive")
DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_optimizer_scaling.json"
)


def _measure(
    workload, mode: str, enumeration: str, repeats: int
) -> Dict[str, object]:
    """Best-of-*repeats* wall-clock for one optimize_block call."""
    spec = GroupingSpec(
        group_keys=workload.group_keys, aggregates=workload.aggregates
    )
    best_seconds = None
    plan = None
    stats = None
    for _ in range(repeats):
        optimizer = BlockOptimizer(
            workload.db.catalog,
            workload.db.params,
            mode=mode,
            enumeration=enumeration,
        )
        started = perf_counter()
        plan = optimizer.optimize_block(
            [BaseLeaf(ref) for ref in workload.relations],
            workload.predicates,
            spec,
            workload.select,
        )
        elapsed = perf_counter() - started
        stats = optimizer.stats
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    assert plan is not None and stats is not None
    return {
        "seconds": best_seconds,
        "cost": plan.props.cost,
        "subsets_expanded": stats.subsets_expanded,
        "joinplan_calls": stats.joinplan_calls,
        "connected_subsets_skipped": stats.connected_subsets_skipped,
        "predicate_split_cache_hits": stats.predicate_split_cache_hits,
    }


def run_scaling(
    sizes: Sequence[int] = SIZES,
    topologies: Sequence[str] = TOPOLOGIES,
    modes: Sequence[str] = MODES,
    repeats: int = 3,
    seed: int = 0,
) -> Dict[str, object]:
    """The full measurement matrix, as a JSON-ready dict.

    Every (topology, leaves, mode) cell is measured with both
    enumerations; costs must match exactly (both enumerators are exact
    over their plan space on connected graphs) and the ``speedups``
    list records exhaustive-time / graph-time per cell.
    """
    entries: List[Dict[str, object]] = []
    speedups: List[Dict[str, object]] = []
    for topology in topologies:
        for leaves in sizes:
            workload = build_join_workload(
                JoinWorkloadConfig(
                    topology=topology, leaves=leaves, seed=seed
                )
            )
            for mode in modes:
                cell: Dict[str, Dict[str, object]] = {}
                for enumeration in ENUMERATIONS:
                    measured = _measure(
                        workload, mode, enumeration, repeats
                    )
                    cell[enumeration] = measured
                    entries.append(
                        {
                            "topology": topology,
                            "leaves": leaves,
                            "mode": mode,
                            "enumeration": enumeration,
                            **measured,
                        }
                    )
                graph_cost = cell["graph"]["cost"]
                exhaustive_cost = cell["exhaustive"]["cost"]
                if graph_cost != exhaustive_cost:
                    raise AssertionError(
                        f"enumerators disagree on {topology}/{leaves}/"
                        f"{mode}: graph={graph_cost} "
                        f"exhaustive={exhaustive_cost}"
                    )
                speedups.append(
                    {
                        "topology": topology,
                        "leaves": leaves,
                        "mode": mode,
                        "speedup": (
                            cell["exhaustive"]["seconds"]
                            / max(cell["graph"]["seconds"], 1e-9)
                        ),
                    }
                )
    return {
        "config": {
            "sizes": list(sizes),
            "topologies": list(topologies),
            "modes": list(modes),
            "repeats": repeats,
            "seed": seed,
        },
        "entries": entries,
        "speedups": speedups,
    }


def _print_table(results: Dict[str, object]) -> None:
    by_key: Dict[Tuple[str, int, str], Dict[str, Dict[str, object]]] = {}
    for entry in results["entries"]:
        key = (entry["topology"], entry["leaves"], entry["mode"])
        by_key.setdefault(key, {})[entry["enumeration"]] = entry
    header = (
        f"{'topology':<10} {'leaves':>6} {'mode':>12} "
        f"{'graph (s)':>10} {'exhaustive (s)':>15} {'speedup':>8} "
        f"{'subsets g/e':>12}"
    )
    print(header)
    print("-" * len(header))
    for speed in results["speedups"]:
        key = (speed["topology"], speed["leaves"], speed["mode"])
        graph = by_key[key]["graph"]
        exhaustive = by_key[key]["exhaustive"]
        print(
            f"{speed['topology']:<10} {speed['leaves']:>6} "
            f"{speed['mode']:>12} {graph['seconds']:>10.4f} "
            f"{exhaustive['seconds']:>15.4f} {speed['speedup']:>7.1f}x "
            f"{graph['subsets_expanded']:>5}/"
            f"{exhaustive['subsets_expanded']}"
        )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="output JSON path",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per cell"
    )
    arguments = parser.parse_args(argv)
    if arguments.repeats < 1:
        parser.error("--repeats must be >= 1")
    results = run_scaling(repeats=arguments.repeats)
    arguments.out.write_text(json.dumps(results, indent=1) + "\n")
    _print_table(results)
    print(f"\nwrote {arguments.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
