"""Executor throughput — streaming batch pipelines vs the row engine.

Runs optimized plans for chain/star join workloads
(:func:`build_join_workload`) and a single-table grouped-aggregate
workload through both executors: the legacy row-at-a-time interpreter
(``engine.rowexec.execute_plan_rows``, the pre-batching engine kept as
the differential baseline) and the streaming batch executor
(``engine.executor.execute_plan``). For every workload the two paths
must produce byte-identical row lists and charge identical page IO —
the batching rewrite is a pure execution-speed change — and the
recorded numbers are wall-clock, rows/second, and the batched/legacy
speedup.

Run directly (``make bench-exec``) to write ``BENCH_executor.json`` at
the repository root and print the throughput table; ``--smoke`` runs a
tiny configuration (used by ``tests/test_batch_engine.py``) so executor
regressions surface in CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter
from typing import Dict, List, Optional, Sequence

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )

import random

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import ColumnRef
from repro.algebra.query import TableRef
from repro.cost.params import CostParams
from repro.db import Database
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute_plan
from repro.engine.rowexec import execute_plan_rows
from repro.optimizer.block import BaseLeaf, BlockOptimizer, GroupingSpec
from repro.workloads import JoinWorkloadConfig, build_join_workload

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_executor.json"
)


def _join_plan(topology: str, leaves: int, seed: int = 0):
    """Optimized plan + database for one join workload."""
    workload = build_join_workload(
        JoinWorkloadConfig(topology=topology, leaves=leaves, seed=seed)
    )
    optimizer = BlockOptimizer(
        workload.db.catalog, workload.db.params, mode="traditional"
    )
    plan = optimizer.optimize_block(
        [BaseLeaf(ref) for ref in workload.relations],
        workload.predicates,
        GroupingSpec(
            group_keys=workload.group_keys, aggregates=workload.aggregates
        ),
        workload.select,
    )
    return plan, workload.db


def _grouped_plan(rows: int, groups: int, seed: int = 0):
    """Optimized single-table grouped-aggregate plan + database."""
    rng = random.Random(seed)
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "gagg",
        [("id", "int"), ("gk", "int"), ("v", "float")],
        primary_key=["id"],
    )
    db.insert(
        "gagg",
        [
            (i, rng.randrange(groups), float(rng.randint(0, 1000)))
            for i in range(rows)
        ],
    )
    db.analyze()
    optimizer = BlockOptimizer(db.catalog, db.params, mode="traditional")
    plan = optimizer.optimize_block(
        [BaseLeaf(TableRef("gagg", "g"))],
        (),
        GroupingSpec(
            group_keys=(("g", "gk"),),
            aggregates=(
                ("total", AggregateCall("sum", ColumnRef("g", "v"))),
                ("cnt", AggregateCall("count", None)),
            ),
        ),
        (
            ("gk", ColumnRef("g", "gk")),
            ("total", ColumnRef(None, "total")),
            ("cnt", ColumnRef(None, "cnt")),
        ),
    )
    return plan, db


def _time_engine(plan, db, runner, repeats: int):
    """Best-of-*repeats* wall-clock for one executor over one plan.

    Returns (result, io_delta, best_seconds). Every repeat re-executes
    from scratch; IO deltas are identical across repeats because page
    charges are deterministic.
    """
    best = None
    result = None
    delta = None
    for _ in range(repeats):
        context = ExecutionContext(db.catalog, db.io, db.params)
        started = perf_counter()
        with db.io.measure() as span:
            result = runner(plan, context)
        elapsed = perf_counter() - started
        delta = span.delta
        if best is None or elapsed < best:
            best = elapsed
    return result, delta, best


def run_bench(
    sizes: Sequence[int] = (4, 8),
    grouped_rows: int = 60_000,
    grouped_groups: int = 500,
    repeats: int = 3,
    seed: int = 0,
) -> Dict[str, object]:
    """The full measurement matrix, as a JSON-ready dict.

    Every workload is executed by both engines; rows must be
    byte-identical (same list, same order) and the page-IO deltas must
    match read-for-read and write-for-write, or this raises.
    """
    workloads = []
    for topology in ("chain", "star"):
        for leaves in sizes:
            plan, db = _join_plan(topology, leaves, seed)
            workloads.append((f"{topology}-{leaves}", plan, db))
    plan, db = _grouped_plan(grouped_rows, grouped_groups, seed)
    workloads.append((f"grouped-agg-{grouped_rows}", plan, db))

    entries: List[Dict[str, object]] = []
    for name, plan, db in workloads:
        legacy_result, legacy_io, legacy_seconds = _time_engine(
            plan, db, execute_plan_rows, repeats
        )
        batched_result, batched_io, batched_seconds = _time_engine(
            plan, db, execute_plan, repeats
        )
        if batched_result.rows != legacy_result.rows:
            raise AssertionError(
                f"{name}: batched rows differ from legacy rows"
            )
        if (
            batched_io.page_reads != legacy_io.page_reads
            or batched_io.page_writes != legacy_io.page_writes
        ):
            raise AssertionError(
                f"{name}: IO drift — legacy {legacy_io} vs "
                f"batched {batched_io}"
            )
        rows = len(batched_result.rows)
        entries.append(
            {
                "workload": name,
                "rows": rows,
                "page_reads": batched_io.page_reads,
                "page_writes": batched_io.page_writes,
                "legacy_seconds": legacy_seconds,
                "batched_seconds": batched_seconds,
                "legacy_rows_per_second": rows / max(legacy_seconds, 1e-9),
                "batched_rows_per_second": rows / max(batched_seconds, 1e-9),
                "speedup": legacy_seconds / max(batched_seconds, 1e-9),
            }
        )
    return {
        "config": {
            "sizes": list(sizes),
            "grouped_rows": grouped_rows,
            "grouped_groups": grouped_groups,
            "repeats": repeats,
            "seed": seed,
        },
        "entries": entries,
    }


def _print_table(results: Dict[str, object]) -> None:
    header = (
        f"{'workload':<20} {'rows':>8} {'io':>6} "
        f"{'legacy (s)':>11} {'batched (s)':>12} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for entry in results["entries"]:
        io_total = entry["page_reads"] + entry["page_writes"]
        print(
            f"{entry['workload']:<20} {entry['rows']:>8} {io_total:>6} "
            f"{entry['legacy_seconds']:>11.4f} "
            f"{entry['batched_seconds']:>12.4f} "
            f"{entry['speedup']:>7.2f}x"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="output JSON path",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per cell"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI smoke runs (no JSON written "
        "unless --out is given explicitly)",
    )
    arguments = parser.parse_args(argv)
    if arguments.repeats < 1:
        parser.error("--repeats must be >= 1")
    if arguments.smoke:
        results = run_bench(
            sizes=(4,), grouped_rows=5_000, grouped_groups=100, repeats=1
        )
    else:
        results = run_bench(repeats=arguments.repeats)
    if not arguments.smoke or arguments.out != DEFAULT_OUTPUT:
        arguments.out.write_text(json.dumps(results, indent=1) + "\n")
        wrote = f"\nwrote {arguments.out}"
    else:
        wrote = "\nsmoke mode: no JSON written"
    _print_table(results)
    print(wrote)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
