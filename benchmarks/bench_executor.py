"""Executor throughput — columnar kernels vs the row-batch engine.

Runs hand-built physical plans (the benchmark controls plan shape, so
it measures executor throughput rather than optimizer choices) through
three executors:

- ``rowexec`` — the legacy row-at-a-time interpreter
  (:func:`repro.engine.rowexec.execute_plan_rows`), kept as the
  differential baseline;
- ``batch-rows`` — the streaming row-batch engine
  (``ExecutionContext(engine="rows")``), the pre-columnar design;
- ``columnar`` — the production engine: :class:`ColumnBatch` pipelines
  with compiled, fused scan→filter→project kernels.

Workloads cover the pipelines the columnar rewrite targets: a fused
filter/compute pipeline over one wide table, PK-FK chain and star
joins (unique build keys — the hash join's zero-copy probe path),
and hash grouped aggregation. For every workload the three engines
must produce identical row bags and charge identical page IO — the
columnar rewrite is a pure execution-speed change — and the recorded
numbers are best-of-N wall-clock seconds per engine plus the
columnar/batched and columnar/legacy speedups.

Run directly (``make bench-exec``) to write ``BENCH_executor.json`` at
the repository root and print the throughput table; ``--smoke`` runs a
tiny configuration (used by ``tests/test_batch_engine.py``) so executor
regressions surface in CI, and ``--assert-speedup N.N`` fails the run
if any selected workload's columnar/batched speedup drops below the
bar (the CI job uses this on the chain and grouped workloads).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )

import random

from reporting import machine_metadata

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Arith, Comparison, col, lit
from repro.algebra.plan import GroupByNode, JoinNode, ProjectNode, ScanNode
from repro.catalog.schema import table_row_schema
from repro.cost.params import CostParams
from repro.db import Database
from repro.engine import ExecutionContext, execute_plan, execute_plan_rows
from repro.optimizer.pruning import prune_plan

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_executor.json"
)

ENGINES = ("rowexec", "batch-rows", "columnar")


def _scan(db: Database, table: str, alias: str, filters=()) -> ScanNode:
    return ScanNode(
        table,
        alias,
        table_row_schema(alias, db.catalog.table(table).columns).fields,
        filters=filters,
    )


# ----------------------------------------------------------------------
# Workloads (each returns ``(db, plan)``)
# ----------------------------------------------------------------------


def pipeline_workload(rows: int = 200_000, seed: int = 0):
    """Scan → three filters → computed projection over one wide table:
    the fused scan→filter→project chain the kernel compiler targets."""
    rng = random.Random(seed)
    db = Database(CostParams(memory_pages=64))
    db.create_table(
        "events",
        [
            ("id", "int"),
            ("kind", "int"),
            ("ts", "int"),
            ("dur", "float"),
            ("score", "float"),
        ],
        primary_key=["id"],
    )
    db.insert(
        "events",
        [
            (
                i,
                rng.randrange(20),
                rng.randrange(1_000_000),
                rng.random() * 100,
                rng.random(),
            )
            for i in range(rows)
        ],
    )
    db.analyze()
    filters = (
        Comparison("<", col("e.kind"), lit(12)),
        Comparison(">=", col("e.dur"), lit(15.0)),
        Comparison("<", col("e.score"), lit(0.8)),
    )
    plan = ProjectNode(
        _scan(db, "events", "e", filters=filters),
        [
            (None, "id", col("e.id")),
            (None, "weighted", Arith("*", col("e.dur"), col("e.score"))),
        ],
    )
    return db, plan


def chain_workload(fact_rows: int = 150_000, seed: int = 1):
    """PK-FK chain: fact → 3 shrinking dimension hops, all hash joins
    probing with the fact side against unique build keys, grouped at
    the top. One filtered hop makes some FK probes miss."""
    rng = random.Random(seed)
    db = Database(CostParams(memory_pages=32))
    sizes = [fact_rows, fact_rows // 5, fact_rows // 25, fact_rows // 125]
    for i, n in enumerate(sizes):
        domain = sizes[i + 1] if i + 1 < len(sizes) else 60
        db.create_table(
            f"c{i}",
            [("id", "int"), ("fk", "int"), ("v", "float")],
            primary_key=["id"],
        )
        db.insert(
            f"c{i}",
            [(j, rng.randrange(max(domain, 1)), rng.random() * 10) for j in range(n)],
        )
    db.analyze()
    join = JoinNode(
        _scan(db, "c0", "a0"),
        _scan(
            db, "c1", "a1", filters=(Comparison("<", col("a1.v"), lit(8.0)),)
        ),
        method="hj",
        equi_keys=[(("a0", "fk"), ("a1", "id"))],
        projection=[("a0", "v"), ("a1", "fk")],
    )
    join = JoinNode(
        join,
        _scan(db, "c2", "a2"),
        method="hj",
        equi_keys=[(("a1", "fk"), ("a2", "id"))],
        projection=[("a0", "v"), ("a2", "fk")],
    )
    join = JoinNode(
        join,
        _scan(db, "c3", "a3"),
        method="hj",
        equi_keys=[(("a2", "fk"), ("a3", "id"))],
        projection=[("a3", "fk"), ("a0", "v")],
    )
    plan = GroupByNode(
        join,
        group_keys=[("a3", "fk")],
        aggregates=[
            ("total", AggregateCall("sum", col("a0.v"))),
            ("n", AggregateCall("count", None)),
        ],
    )
    return db, plan


def star_workload(fact_rows: int = 120_000, dim_rows: int = 4_000, seed: int = 2):
    """PK-FK star: fact probing three dimension builds (one filtered),
    grouped on a dimension category."""
    rng = random.Random(seed)
    db = Database(CostParams(memory_pages=32))
    for d in range(3):
        db.create_table(
            f"dim{d}",
            [("id", "int"), ("cat", "int"), ("w", "float")],
            primary_key=["id"],
        )
        db.insert(
            f"dim{d}",
            [(i, rng.randrange(50), rng.random()) for i in range(dim_rows)],
        )
    db.create_table(
        "fact",
        [
            ("f_id", "int"),
            ("d0", "int"),
            ("d1", "int"),
            ("d2", "int"),
            ("v", "float"),
        ],
        primary_key=["f_id"],
    )
    db.insert(
        "fact",
        [
            (
                i,
                rng.randrange(dim_rows),
                rng.randrange(dim_rows),
                rng.randrange(dim_rows),
                rng.random() * 10,
            )
            for i in range(fact_rows)
        ],
    )
    db.analyze()
    join = JoinNode(
        _scan(db, "fact", "f"),
        _scan(
            db, "dim0", "g0", filters=(Comparison("<", col("g0.cat"), lit(40)),)
        ),
        method="hj",
        equi_keys=[(("f", "d0"), ("g0", "id"))],
        projection=[("f", "d1"), ("f", "d2"), ("f", "v"), ("g0", "cat")],
    )
    join = JoinNode(
        join,
        _scan(db, "dim1", "g1"),
        method="hj",
        equi_keys=[(("f", "d1"), ("g1", "id"))],
        projection=[("f", "d2"), ("f", "v"), ("g0", "cat")],
    )
    join = JoinNode(
        join,
        _scan(db, "dim2", "g2"),
        method="hj",
        equi_keys=[(("f", "d2"), ("g2", "id"))],
        projection=[("g0", "cat"), ("f", "v")],
    )
    plan = GroupByNode(
        join,
        group_keys=[("g0", "cat")],
        aggregates=[("total", AggregateCall("sum", col("f.v")))],
    )
    return db, plan


def grouped_workload(rows: int = 60_000, groups: int = 500, seed: int = 3):
    """Single-table hash grouped aggregation (compiled update kernel)."""
    rng = random.Random(seed)
    db = Database(CostParams(memory_pages=8))
    db.create_table(
        "gagg",
        [("id", "int"), ("gk", "int"), ("v", "float")],
        primary_key=["id"],
    )
    db.insert(
        "gagg",
        [
            (i, rng.randrange(groups), float(rng.randint(0, 1000)))
            for i in range(rows)
        ],
    )
    db.analyze()
    plan = GroupByNode(
        _scan(db, "gagg", "g"),
        group_keys=[("g", "gk")],
        aggregates=[
            ("total", AggregateCall("sum", col("g.v"))),
            ("n", AggregateCall("count", None)),
        ],
    )
    return db, plan


def fanout_workload(
    wide_rows: int = 40_000,
    dup_keys: int = 4_000,
    dups_per_key: int = 8,
    payload: int = 14,
    seed: int = 4,
):
    """Duplicate-key fan-out over a wide projection — the emit-bound
    shape projection pruning targets.

    A 16-column table probes a build side holding *dups_per_key* rows
    per key, so every surviving wide column is counts-expanded
    ``dups_per_key``-fold by the join. The **unpruned** plan carries
    every predicate column to the top the way the pre-pruning optimizer
    did (its multi-column scan filters put all payload columns in the
    live set); the measured plan is :func:`prune_plan` of it — only the
    group key and the aggregate input survive the join. Returns
    ``(db, pruned_plan, unpruned_plan)``; the harness times the pruned
    plan on all engines and the unpruned plan on the columnar engine for
    the pruning-on/off speedup and cells-expanded comparison.
    """
    rng = random.Random(seed)
    # a big buffer pool keeps both variants spill-free: spill *would*
    # shrink under pruning (narrower partitions), which would break the
    # IO-identity cross-check this harness applies to every workload
    db = Database(CostParams(memory_pages=2048))
    columns = [("id", "int"), ("fk", "int")] + [
        (f"v{i}", "float") for i in range(payload)
    ]
    db.create_table("wide", columns, primary_key=["id"])
    db.insert(
        "wide",
        [
            tuple(
                [i, rng.randrange(dup_keys)]
                + [rng.random() * 100 for _ in range(payload)]
            )
            for i in range(wide_rows)
        ],
    )
    db.create_table(
        "dup", [("rid", "int"), ("key", "int"), ("cat", "int")],
        primary_key=["rid"],
    )
    db.insert(
        "dup",
        [
            (k * dups_per_key + j, k, k % 60)
            for k in range(dup_keys)
            for j in range(dups_per_key)
        ],
    )
    db.analyze()
    # loose multi-column filters: nearly every row survives, but every
    # payload column is a predicate column — the pre-pruning live set
    filters = tuple(
        Comparison("<", col(f"w.v{i}"), lit(99.5)) for i in range(payload)
    )
    unpruned = GroupByNode(
        JoinNode(
            _scan(db, "wide", "w", filters=filters),
            _scan(db, "dup", "d"),
            method="hj",
            equi_keys=[(("w", "fk"), ("d", "key"))],
            # old-style projection: every predicate column rides along
            projection=[("w", "fk")]
            + [("w", f"v{i}") for i in range(payload)]
            + [("d", "cat")],
        ),
        group_keys=[("d", "cat")],
        aggregates=[
            ("total", AggregateCall("sum", col("w.v0"))),
            ("n", AggregateCall("count", None)),
        ],
    )
    pruned = prune_plan(unpruned)
    return db, pruned, unpruned


# (name, builder, full-size kwargs, smoke kwargs)
WORKLOADS = (
    ("pipeline", pipeline_workload, {}, {"rows": 4_000}),
    ("chain-pkfk", chain_workload, {}, {"fact_rows": 5_000}),
    ("star-pkfk", star_workload, {}, {"fact_rows": 4_000, "dim_rows": 400}),
    ("grouped-agg", grouped_workload, {}, {"rows": 2_000, "groups": 50}),
    (
        "fanout-dup",
        fanout_workload,
        {},
        {"wide_rows": 2_000, "dup_keys": 200, "dups_per_key": 4},
    ),
)

# workloads the CI smoke job holds to the speedup bar: one join chain,
# one grouped aggregate, and the duplicate-key fan-out shape (full
# sizes, so fixed overheads amortize)
ASSERTED_WORKLOADS = ("chain-pkfk", "grouped-agg", "fanout-dup")


def _count_cells(plan, db) -> int:
    """Cells materialized by one columnar execution (the engine's
    per-operator ``cells`` counters summed — what pruning shrinks)."""
    context = ExecutionContext(db.catalog, db.io, db.params)
    execute_plan(plan, context)
    return context.metrics.total_cells


def _time_engine(plan, db, engine: str, repeats: int):
    """Best-of-*repeats* wall-clock for one executor over one plan.

    Returns (result, io_delta, best_seconds). Every repeat re-executes
    from scratch; IO deltas are identical across repeats because page
    charges are deterministic.
    """
    best = None
    result = None
    delta = None
    for _ in range(repeats):
        context = ExecutionContext(
            db.catalog,
            db.io,
            db.params,
            engine="rows" if engine == "batch-rows" else "columnar",
        )
        started = perf_counter()
        with db.io.measure() as span:
            if engine == "rowexec":
                result = execute_plan_rows(plan, context)
            else:
                result = execute_plan(plan, context)
        elapsed = perf_counter() - started
        delta = span.delta
        if best is None or elapsed < best:
            best = elapsed
    return result, delta, best


def run_bench(
    smoke: bool = False,
    repeats: int = 3,
    assert_speedup: Optional[float] = None,
    assert_workloads: Sequence[str] = ASSERTED_WORKLOADS,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """The full measurement matrix, as a JSON-ready dict.

    Every workload is executed by all three engines; the row bags must
    be identical and the page-IO deltas must match read-for-read and
    write-for-write, or this raises. With *assert_speedup* set, any
    workload in *assert_workloads* whose columnar/batched speedup falls
    below the bar raises as well. *only* restricts the run to a subset
    of workload names (the CI speedup gate runs just the asserted two
    at full size).
    """
    entries: List[Dict[str, object]] = []
    failures: List[str] = []
    for name, builder, full_kwargs, smoke_kwargs in WORKLOADS:
        if only is not None and name not in only:
            continue
        built = builder(**(smoke_kwargs if smoke else full_kwargs))
        db, plan = built[0], built[1]
        unpruned = built[2] if len(built) > 2 else None
        timings: Dict[str, Tuple[object, object, float]] = {}
        for engine in ENGINES:
            timings[engine] = _time_engine(plan, db, engine, repeats)
        base_result, base_io, _ = timings["rowexec"]
        base_bag = sorted(map(repr, base_result.rows))
        for engine in ENGINES[1:]:
            result, io, _ = timings[engine]
            if sorted(map(repr, result.rows)) != base_bag:
                raise AssertionError(
                    f"{name}: {engine} rows differ from rowexec rows"
                )
            if (
                io.page_reads != base_io.page_reads
                or io.page_writes != base_io.page_writes
            ):
                raise AssertionError(
                    f"{name}: IO drift — rowexec {base_io} vs "
                    f"{engine} {io}"
                )
        legacy_seconds = timings["rowexec"][2]
        batched_seconds = timings["batch-rows"][2]
        columnar_seconds = timings["columnar"][2]
        rows = len(base_result.rows)
        speedup = batched_seconds / max(columnar_seconds, 1e-9)
        entry: Dict[str, object] = {
            "workload": name,
            "rows": rows,
            "page_reads": base_io.page_reads,
            "page_writes": base_io.page_writes,
            "legacy_seconds": legacy_seconds,
            "batched_seconds": batched_seconds,
            "columnar_seconds": columnar_seconds,
            "columnar_rows_per_second": rows
            / max(columnar_seconds, 1e-9),
            "speedup_columnar_vs_batched": speedup,
            "speedup_columnar_vs_legacy": legacy_seconds
            / max(columnar_seconds, 1e-9),
        }
        pruning_speedup = None
        if unpruned is not None:
            # pruning-on vs pruning-off, both on the columnar engine:
            # same join core, same row bags — only emit width differs
            unpruned_result, unpruned_io, unpruned_seconds = _time_engine(
                unpruned, db, "columnar", repeats
            )
            if sorted(map(repr, unpruned_result.rows)) != base_bag:
                raise AssertionError(
                    f"{name}: unpruned rows differ from pruned rows"
                )
            if (
                unpruned_io.page_reads != base_io.page_reads
                or unpruned_io.page_writes != base_io.page_writes
            ):
                raise AssertionError(
                    f"{name}: IO drift — pruned {base_io} vs "
                    f"unpruned {unpruned_io}"
                )
            pruning_speedup = unpruned_seconds / max(columnar_seconds, 1e-9)
            entry["unpruned_columnar_seconds"] = unpruned_seconds
            entry["speedup_pruned_vs_unpruned"] = pruning_speedup
            entry["cells_expanded_pruned"] = _count_cells(plan, db)
            entry["cells_expanded_unpruned"] = _count_cells(unpruned, db)
        entries.append(entry)
        if assert_speedup is not None and name in assert_workloads:
            if speedup < assert_speedup:
                failures.append(
                    f"{name}: columnar {speedup:.2f}x vs batched "
                    f"(required >= {assert_speedup:.2f}x)"
                )
            if (
                pruning_speedup is not None
                and pruning_speedup < assert_speedup
            ):
                failures.append(
                    f"{name}: pruned {pruning_speedup:.2f}x vs unpruned "
                    f"(required >= {assert_speedup:.2f}x)"
                )
    if failures:
        raise AssertionError("speedup bar missed — " + "; ".join(failures))
    return {
        "config": {
            "smoke": smoke,
            "repeats": repeats,
            "engines": list(ENGINES),
        },
        "machine": machine_metadata(),
        "entries": entries,
    }


def _print_table(results: Dict[str, object]) -> None:
    header = (
        f"{'workload':<14} {'rows':>8} {'io':>6} "
        f"{'legacy (s)':>11} {'batched (s)':>12} {'columnar (s)':>13} "
        f"{'col/batch':>10}"
    )
    print(header)
    print("-" * len(header))
    for entry in results["entries"]:
        io_total = entry["page_reads"] + entry["page_writes"]
        print(
            f"{entry['workload']:<14} {entry['rows']:>8} {io_total:>6} "
            f"{entry['legacy_seconds']:>11.4f} "
            f"{entry['batched_seconds']:>12.4f} "
            f"{entry['columnar_seconds']:>13.4f} "
            f"{entry['speedup_columnar_vs_batched']:>9.2f}x"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help="output JSON path",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per cell"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI smoke runs (no JSON written "
        "unless --out is given explicitly)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="N.N",
        help="fail unless the chain and grouped workloads reach this "
        "columnar/batched speedup",
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        metavar="NAMES",
        help="comma-separated workload subset (no JSON written unless "
        "--out is given explicitly)",
    )
    arguments = parser.parse_args(argv)
    if arguments.repeats < 1:
        parser.error("--repeats must be >= 1")
    only = arguments.only.split(",") if arguments.only else None
    if only:
        known = {name for name, *_ in WORKLOADS}
        unknown = [name for name in only if name not in known]
        if unknown:
            parser.error(f"unknown workloads: {', '.join(unknown)}")
    results = run_bench(
        smoke=arguments.smoke,
        repeats=1 if arguments.smoke and arguments.repeats == 3 else arguments.repeats,
        assert_speedup=arguments.assert_speedup,
        only=only,
    )
    partial = arguments.smoke or only is not None
    if not partial or arguments.out != DEFAULT_OUTPUT:
        arguments.out.write_text(json.dumps(results, indent=1) + "\n")
        wrote = f"\nwrote {arguments.out}"
    else:
        wrote = "\npartial run: no JSON written"
    _print_table(results)
    print(wrote)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
