"""E14 — the Section 5 adaptation: weighted CPU + IO cost.

Paper claim: "The algorithms can be adapted to optimize a weighted
combination of CPU and IO cost." Under a pure IO objective, a group-by
whose inputs fit in memory is free, so the greedy heuristic sees no
reason to aggregate early; a CPU-aware objective accounts for the
tuples flowing through the join and prefers shrinking them first.

Regenerates: greedy plan choice and estimated/executed weighted cost as
the CPU weight sweeps from 0 (the paper's base model) upward.
"""

import random

import pytest

from repro import CostParams, Database
from repro.cost.model import executed_weighted_cost
from reporting import report_table

SQL = """
select s.dno, sum(s.amt) as t from sales s, dept d
where s.dno = d.dno
group by s.dno
"""


def build(cpu_weight: float) -> Database:
    db = Database(CostParams(memory_pages=64, cpu_tuple_weight=cpu_weight))
    db.create_table(
        "sales", [("sid", "int"), ("dno", "int"), ("amt", "float")],
        primary_key=["sid"],
    )
    db.create_table(
        "dept", [("dno", "int"), ("name", "int")], primary_key=["dno"]
    )
    rng = random.Random(31)
    db.insert(
        "sales",
        [(i, i % 20, float(rng.randint(1, 99))) for i in range(6000)],
    )
    db.insert("dept", [(d, d) for d in range(20)])
    db.analyze()
    return db


@pytest.fixture(scope="module")
def cpu_rows():
    rows = []
    for weight in (0.0, 0.001, 0.01, 0.05):
        db = build(weight)
        result = db.query(SQL, optimizer="greedy")
        executed = executed_weighted_cost(
            result.plan, db.params, result.executed_io.total
        )
        early = result.optimization.stats.early_groupby_accepted > 0
        rows.append(
            (
                weight,
                f"{result.estimated_cost:.1f}",
                f"{executed:.1f}",
                "early-G" if early else "late-G",
            )
        )
    report_table(
        "E14",
        "Weighted CPU+IO objective (Section 5 adaptation)",
        ["cpu weight", "est cost", "executed cost", "greedy grouping"],
        rows,
        notes=[
            "paper shape: at weight 0 (IO-only) the in-memory group-by "
            "is free and stays late; as tuples start to cost, the "
            "greedy conservative heuristic moves the group-by below "
            "the join."
        ],
    )
    return rows


def test_e14_weight_flips_the_choice(cpu_rows, benchmark, bench_rounds):
    assert cpu_rows[0][3] == "late-G"
    assert cpu_rows[-1][3] == "early-G"
    db = build(0.05)
    benchmark.pedantic(
        lambda: db.optimize(SQL, optimizer="greedy"),
        rounds=bench_rounds,
        iterations=1,
    )


def test_e14_estimates_track_weighted_execution(
    cpu_rows, benchmark, bench_rounds
):
    for _, estimated, executed, _ in cpu_rows:
        assert float(executed) == pytest.approx(float(estimated), rel=0.02)
    db = build(0.0)
    benchmark.pedantic(
        lambda: db.optimize(SQL, optimizer="greedy"),
        rounds=bench_rounds,
        iterations=1,
    )
