"""A guided tour of the paper's transformations, one by one.

Shows, for each transformation, the query/plan before and after, the
resulting SQL (via the unparser), and a correctness check against the
brute-force reference — a compact companion to Sections 3 and 4.

Run:  python examples/transformations_walkthrough.py
"""

from repro.algebra.aggregates import AggregateCall
from repro.algebra.expressions import Comparison, col, lit
from repro.algebra.plan import GroupByNode, JoinNode, ScanNode, explain
from repro.catalog.schema import table_row_schema
from repro.cost import CostModel
from repro.engine import ExecutionContext, execute_plan
from repro.engine.reference import evaluate_canonical, rows_equal_bag
from repro.sql import bind_sql
from repro.sql.unparse import query_to_sql
from repro.transforms import (
    apply_invariant_split,
    coalesce_plan,
    minimal_invariant_set,
    propagate_predicates,
    pull_up,
    pull_up_plan,
)
from repro.workloads import EmpDeptConfig, build_empdept


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def check(db, before_query, after_query) -> None:
    first = evaluate_canonical(before_query, db.catalog)
    second = evaluate_canonical(after_query, db.catalog)
    assert rows_equal_bag(first.rows, second.rows)
    print(f"[equivalent: both return {len(first.rows)} rows]")


def main() -> None:
    db = build_empdept(EmpDeptConfig(employees=400, departments=12))

    # ------------------------------------------------------------------
    banner("1. Pull-up (Section 3, Definition 1) — query level")
    sql = """
    with a1(dno, asal) as (
        select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
    )
    select e1.sal from emp e1, a1 b
    where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
    """
    query = bind_sql(sql, db.catalog)
    print("before (query A1/A2):")
    print(query_to_sql(query))
    pulled = pull_up(query, "b", ["e1"], db.catalog)
    print("\nafter pulling e1 through the view (query B):")
    print(query_to_sql(pulled))
    check(db, query, pulled)

    # ------------------------------------------------------------------
    banner("2. Pull-up — plan level (Figure 1: J1(G1, R2) -> G2(J2))")
    emp_columns = db.catalog.table("emp").columns
    inner = ScanNode("emp", "e2", table_row_schema("e2", emp_columns).fields)
    group = GroupByNode(
        inner,
        group_keys=[("e2", "dno")],
        aggregates=[("asal", AggregateCall("avg", col("e2.sal")))],
    )
    outer = ScanNode(
        "emp",
        "e1",
        table_row_schema("e1", emp_columns).fields,
        filters=(Comparison("<", col("e1.age"), lit(22)),),
    )
    join = JoinNode(
        group,
        outer,
        method="hj",
        equi_keys=[(("e2", "dno"), ("e1", "dno"))],
        residuals=(Comparison(">", col("e1.sal"), col("asal")),),
        projection=[("e1", "sal")],
    )
    model = CostModel(db.catalog, db.params)
    model.annotate_tree(join)
    print("plan P1 (group-by before the join):")
    print(explain(join))
    pulled_plan = pull_up_plan(join, db.catalog)
    model.annotate_tree(pulled_plan)
    print("\nplan P2 (group-by deferred past the join):")
    print(explain(pulled_plan))
    context = ExecutionContext(db.catalog, db.io, db.params)
    assert rows_equal_bag(
        execute_plan(join, context).rows,
        execute_plan(pulled_plan, context).rows,
    )
    print("[plans produce identical rows]")

    # ------------------------------------------------------------------
    banner("3. Minimal invariant set (Section 4.1)")
    sql = """
    with c(dno, asal) as (
        select e.dno, avg(e.sal) from emp e, dept d
        where e.dno = d.dno and d.budget < 1000000
        group by e.dno
    )
    select v.dno, v.asal from c v
    """
    query = bind_sql(sql, db.catalog)
    block = query.views[0].block
    invariant = minimal_invariant_set(block, db.catalog)
    print(f"view relations: {sorted(block.aliases)}")
    print(f"minimal invariant set: {sorted(invariant)} "
          "(dept moves above the group-by)")
    split = apply_invariant_split(query, db.catalog)
    print("\nafter the split:")
    print(query_to_sql(split))
    check(db, query, split)

    # ------------------------------------------------------------------
    banner("4. Simple coalescing grouping (Section 4.2, Figure 2(b))")
    dept_columns = db.catalog.table("dept").columns
    join = JoinNode(
        ScanNode("emp", "e", table_row_schema("e", emp_columns).fields),
        ScanNode("dept", "d", table_row_schema("d", dept_columns).fields),
        method="hj",
        equi_keys=[(("e", "dno"), ("d", "dno"))],
    )
    late = GroupByNode(
        join,
        group_keys=[("d", "loc")],
        aggregates=[("a", AggregateCall("avg", col("e.sal")))],
    )
    model.annotate_tree(late)
    print("late grouping:")
    print(explain(late))
    early = coalesce_plan(late)
    model.annotate_tree(early)
    print("\nwith an added partial group-by (coalesced above):")
    print(explain(early))
    assert rows_equal_bag(
        execute_plan(late, context).rows,
        execute_plan(early, context).rows,
    )
    print("[plans produce identical rows]")

    # ------------------------------------------------------------------
    banner("5. Predicate propagation ([LMS94] baseline, Section 1)")
    sql = """
    with v(dno, asal) as (
        select e.dno, avg(e.sal) from emp e group by e.dno
    )
    select v.asal from v where v.dno = 3
    """
    query = bind_sql(sql, db.catalog)
    moved = propagate_predicates(query)
    print("before:")
    print(query_to_sql(query))
    print("\nafter (the dno filter moved inside the view):")
    print(query_to_sql(moved))
    check(db, query, moved)


if __name__ == "__main__":
    main()
