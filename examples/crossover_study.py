"""The Example 1 crossover: when does pull-up win?

"If there are many departments but few employees are younger than 22
years, then the query B may be more efficient ... if there are few
departments but many employees below 22 years old, then execution of A1
and A2 may be significantly less expensive." (Section 3)

This script sweeps the two knobs — the age-threshold selectivity and
the number of departments — and reports, per cell, which strategy the
cost-based optimizer picks and the executed page IO of both plans,
reproducing the crossover the paper describes. Ages are uniform so the
optimizer's selectivity estimates track the data exactly; the choice it
makes is then the genuinely cheaper one.

Run:  python examples/crossover_study.py
"""

from repro.workloads import EmpDeptConfig, build_empdept


def example1_sql(age_threshold: int) -> str:
    return f"""
    with a1(dno, asal) as (
        select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
    )
    select e1.sal from emp e1, a1 b
    where e1.dno = b.dno and e1.age < {age_threshold} and e1.sal > b.asal
    """


def main() -> None:
    age_thresholds = [19, 30, 55]  # ~2%, ~26%, ~79% of uniform [18, 65]
    department_counts = [10, 1000, 4000]
    employees = 8000

    header = (
        f"{'age<':>5s} {'depts':>6s} {'trad IO':>8s} {'full IO':>8s} "
        f"{'choice':>8s} {'speedup':>8s}"
    )
    print(header)
    print("-" * len(header))
    for threshold in age_thresholds:
        for departments in department_counts:
            db = build_empdept(
                EmpDeptConfig(
                    employees=employees,
                    departments=departments,
                    uniform_ages=True,
                    memory_pages=8,
                    with_indexes=False,
                )
            )
            sql = example1_sql(threshold)
            traditional = db.query(sql, optimizer="traditional")
            full = db.query(sql, optimizer="full")
            assert sorted(traditional.rows) == sorted(full.rows)
            pulled = bool(full.optimization.pull_choices.get("b"))
            speedup = (
                traditional.executed_io.total
                / max(1, full.executed_io.total)
            )
            print(
                f"{threshold:5d} {departments:6d} "
                f"{traditional.executed_io.total:8d} "
                f"{full.executed_io.total:8d} "
                f"{'pull-up' if pulled else 'local':>8s} "
                f"{speedup:8.2f}"
            )
    print()
    print(
        "Expected shape (paper, Section 3): pull-up wins with a "
        "selective filter and many departments (top right); the "
        "traditional local-view plan is kept elsewhere, so the "
        "cost-based optimizer never loses."
    )


if __name__ == "__main__":
    main()
