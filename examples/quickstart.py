"""Quickstart: the paper's Example 1, end to end.

Builds the emp/dept schema, runs the "employees under 22 earning more
than their department's average" query through the three optimizer
levels, and shows plans, estimated IO cost, and executed page IO.

Run:  python examples/quickstart.py
"""

from repro import Database, CostParams


def main() -> None:
    db = Database(CostParams(memory_pages=8))

    db.create_table(
        "emp",
        [("eno", "int"), ("dno", "int"), ("sal", "float"), ("age", "int")],
        primary_key=["eno"],
    )
    import random

    rng = random.Random(0)
    db.insert(
        "emp",
        [
            (
                eno,
                rng.randrange(4000),  # many departments, few young:
                # the regime where pull-up wins (Section 3)
                float(rng.randint(20_000, 120_000)),
                rng.randint(18, 65),
            )
            for eno in range(8000)
        ],
    )
    db.analyze()

    # Example 1 of the paper, written as a correlated nested subquery;
    # the binder unnests it (Kim's transformation) into an aggregate
    # view, which the optimizer may then pull up.
    sql = """
    select e1.sal from emp e1
    where e1.age < 20
      and e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)
    """

    print("Query:")
    print(sql)
    for optimizer in ("traditional", "greedy", "full"):
        result = db.query(sql, optimizer=optimizer)
        print(f"--- optimizer = {optimizer}")
        print(f"rows returned : {len(result.rows)}")
        print(f"estimated cost: {result.estimated_cost:.0f} page IOs")
        print(f"executed IO   : {result.executed_io.total} page IOs")
        if optimizer == "full":
            choices = result.optimization.pull_choices
            print(f"pull-up choice: {choices}")
            print("plan:")
            print(result.explain())
        print()

    full = db.query(sql, optimizer="full", execute=False)
    traditional_cost = full.optimization.traditional_cost
    print(
        f"The full optimizer's plan costs {full.estimated_cost:.0f} vs "
        f"{traditional_cost:.0f} for the traditional plan "
        f"({traditional_cost / full.estimated_cost:.2f}x better)."
    )


if __name__ == "__main__":
    main()
