"""Decision-support workload on the TPC-D-like schema.

The paper motivates aggregate views with decision-support applications
(Section 1, "e.g., see TPC-D benchmark"). This example runs three
representative query shapes over a synthetic star schema:

1. revenue per customer through a lineitem-revenue view,
2. customers spending above their own average order (nested subquery),
3. best supplier revenue per nation (outer group-by over a view).

Run:  python examples/decision_support.py
"""

from repro.workloads import TpcdConfig, build_tpcd_like
from repro.workloads.tpcdlike import (
    BIG_SPENDERS_SQL,
    REVENUE_PER_CUSTOMER_SQL,
    SUPPLIER_SHARE_SQL,
)


def run_one(db, title: str, sql: str) -> None:
    print("=" * 70)
    print(title)
    print(sql.strip())
    print("-" * 70)
    traditional = db.query(sql, optimizer="traditional")
    full = db.query(sql, optimizer="full")
    assert sorted(map(repr, traditional.rows)) == sorted(map(repr, full.rows))
    print(f"rows: {len(full.rows)}   sample: {full.rows[:3]}")
    print(
        f"traditional: est {traditional.estimated_cost:8.0f}  "
        f"executed {traditional.executed_io.total:6d} page IOs"
    )
    print(
        f"full       : est {full.estimated_cost:8.0f}  "
        f"executed {full.executed_io.total:6d} page IOs   "
        f"pull-up: {full.optimization.pull_choices}"
    )
    print("chosen plan:")
    print(full.explain())
    print()


def main() -> None:
    db = build_tpcd_like(TpcdConfig(orders=3000, customers=250))
    run_one(db, "Q1: revenue per active customer", REVENUE_PER_CUSTOMER_SQL)
    run_one(db, "Q2: customers out-spending their average order",
            BIG_SPENDERS_SQL)
    run_one(db, "Q3: best supplier revenue per nation", SUPPLIER_SHARE_SQL)


if __name__ == "__main__":
    main()
