"""Nested subqueries via Kim's flattening (Section 1 / footnote 3).

Shows how a correlated nested subquery becomes a join with an aggregate
view (the class this paper's optimizer targets), why COUNT subqueries
are rejected (Kim's COUNT bug needs outer joins, which are out of
scope), and how the optimizer then treats the flattened query.

Run:  python examples/nested_subqueries.py
"""

from repro import Database
from repro.errors import UnsupportedFeatureError
from repro.transforms import unnest_sql
from repro.workloads import EmpDeptConfig, build_empdept


def main() -> None:
    db = build_empdept(EmpDeptConfig(employees=4000, departments=100))

    sql = """
    select e1.sal from emp e1
    where e1.age < 22
      and e1.sal > (select avg(e2.sal) from emp e2 where e2.dno = e1.dno)
    """
    print("Nested query:")
    print(sql)

    report = unnest_sql(sql, db.catalog)
    print(f"Unnested {report.unnested_count} subquery into aggregate "
          f"view(s): {report.view_aliases}")
    view = report.query.views[0]
    print(f"  view grouping columns: "
          f"{[g.display() for g in view.block.group_by]}")
    print(f"  view aggregates      : "
          f"{[(n, c.display()) for n, c in view.block.aggregates]}")
    print(f"  outer predicates     : "
          f"{[p.display() for p in report.query.predicates]}")
    print()

    result = db.query(sql, optimizer="full")
    print(f"rows: {len(result.rows)}  executed IO: "
          f"{result.executed_io.total}  pull-up: "
          f"{result.optimization.pull_choices}")
    print(result.explain())
    print()

    # Equivalent hand-written view form returns the same rows.
    view_sql = """
    with a1(dno, asal) as (
        select e2.dno, avg(e2.sal) from emp e2 group by e2.dno
    )
    select e1.sal from emp e1, a1 b
    where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
    """
    view_result = db.query(view_sql, optimizer="full")
    same = sorted(result.rows) == sorted(view_result.rows)
    print(f"hand-written view form returns identical rows: {same}")
    print()

    # COUNT subqueries need outer joins to flatten soundly (the paper's
    # footnote: "such transformations may introduce outerjoins").
    count_sql = """
    select e1.sal from emp e1
    where e1.eno > (select count(*) from emp e2 where e2.dno = e1.dno)
    """
    try:
        db.query(count_sql)
    except UnsupportedFeatureError as error:
        print(f"COUNT subquery correctly rejected: {error}")


if __name__ == "__main__":
    main()
