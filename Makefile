# Convenience targets for the repro repository.

PYTHON ?= python

.DEFAULT_GOAL := help

FUZZ_SEEDS ?= 50
FUZZ_PROFILE ?= default
FUZZ_ARGS ?=

.PHONY: help test fuzz fuzz-smoke bench bench-opt bench-exec \
	bench-exec-smoke bench-exec-gate bench-fanout bench-views \
	bench-views-smoke bench-card bench-card-smoke bench-serve \
	bench-serve-smoke bench-eager bench-eager-smoke bench-subq \
	bench-subq-smoke examples shell serve all

help:
	@echo "repro targets:"
	@echo "  make test             run the test suite"
	@echo "  make fuzz             differential fuzz run (FUZZ_SEEDS, FUZZ_PROFILE)"
	@echo "  make fuzz-smoke       bounded fuzz smoke for CI (~60s, fixed seeds)"
	@echo "  make bench            run pytest-benchmark suites"
	@echo "  make bench-opt        optimizer scaling -> BENCH_optimizer_scaling.json"
	@echo "  make bench-exec       executor throughput -> BENCH_executor.json"
	@echo "  make bench-exec-smoke executor throughput, tiny CI configuration"
	@echo "  make bench-exec-gate  assert columnar >=2x on chain + grouped-agg + fanout"
	@echo "  make bench-fanout     duplicate-key fan-out smoke (pruning on/off)"
	@echo "  make bench-views      materialized-view payoff -> BENCH_views.json"
	@echo "  make bench-views-smoke view payoff, tiny CI configuration"
	@echo "  make bench-card       cardinality q-error study -> BENCH_cardinality.json"
	@echo "  make bench-card-smoke cardinality study, tiny CI configuration"
	@echo "  make bench-serve      serving qps/latency study -> BENCH_serving.json"
	@echo "  make bench-serve-smoke serving study, tiny CI configuration with gates"
	@echo "  make bench-eager      eager aggregation payoff -> BENCH_eager.json"
	@echo "  make bench-eager-smoke eager payoff, tiny CI configuration with >=2x gate"
	@echo "  make bench-subq       decorrelation payoff -> BENCH_subquery.json"
	@echo "  make bench-subq-smoke decorrelation payoff, tiny CI configuration with >=5x gate"
	@echo "  make examples         run the example scripts"
	@echo "  make shell            interactive SQL shell with demo data"
	@echo "  make serve            line-protocol server on demo data"

test:
	$(PYTHON) -m pytest tests/

fuzz:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seeds $(FUZZ_SEEDS) \
		--profile $(FUZZ_PROFILE) --report FUZZ_report.json $(FUZZ_ARGS)

fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seeds 30 --profile smoke \
		--duration 60 --quiet --report FUZZ_report.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-opt:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_optimizer_scaling.py --out BENCH_optimizer_scaling.json

bench-exec:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_executor.py --out BENCH_executor.json

bench-exec-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_executor.py --smoke

bench-exec-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_executor.py \
		--only chain-pkfk,grouped-agg,fanout-dup --assert-speedup 2.0 \
		--repeats 5

bench-fanout:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_executor.py \
		--smoke --only fanout-dup

bench-views:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_views.py --out BENCH_views.json

bench-views-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_views.py --smoke

bench-card:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cost_model_fidelity.py --out BENCH_cardinality.json

bench-card-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cost_model_fidelity.py --smoke

bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serving.py --out BENCH_serving.json \
		--assert-speedup 5.0

bench-serve-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serving.py --smoke \
		--assert-speedup 5.0 --out BENCH_serving_smoke.json

bench-eager:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_eager_agg.py --out BENCH_eager.json \
		--assert-reduction 2.0

bench-eager-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_eager_agg.py --smoke \
		--assert-reduction 2.0 --out BENCH_eager_smoke.json

bench-subq:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_subquery.py --out BENCH_subquery.json \
		--assert-speedup 5.0

bench-subq-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_subquery.py --smoke \
		--assert-speedup 5.0 --out BENCH_subquery_smoke.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crossover_study.py
	$(PYTHON) examples/decision_support.py
	$(PYTHON) examples/nested_subqueries.py
	$(PYTHON) examples/transformations_walkthrough.py

shell:
	$(PYTHON) -m repro --demo

serve:
	$(PYTHON) -m repro serve --demo

all: test bench
