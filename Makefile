# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: test bench examples shell all

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crossover_study.py
	$(PYTHON) examples/decision_support.py
	$(PYTHON) examples/nested_subqueries.py
	$(PYTHON) examples/transformations_walkthrough.py

shell:
	$(PYTHON) -m repro --demo

all: test bench
