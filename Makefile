# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: test bench bench-opt examples shell all

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-opt:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_optimizer_scaling.py --out BENCH_optimizer_scaling.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crossover_study.py
	$(PYTHON) examples/decision_support.py
	$(PYTHON) examples/nested_subqueries.py
	$(PYTHON) examples/transformations_walkthrough.py

shell:
	$(PYTHON) -m repro --demo

all: test bench
